"""E1 — Framework 1.3 exactness (Theorem 3.1).

Claim: conditioned on not failing, the G-sampler's output distribution is
*exactly* ``G(f_i)/F_G`` — the empirical TV distance sits at the
Monte-Carlo noise floor and χ² cannot reject, for every measure and
workload.
"""

import numpy as np
import pytest

from conftest import write_table
from repro.core import (
    FairMeasure,
    HuberMeasure,
    L1L2Measure,
    LpMeasure,
    TrulyPerfectGSampler,
    TrulyPerfectLpSampler,
)
from repro.stats import evaluate, g_target
from repro.streams import stream_from_frequencies, uniform_stream, zipf_stream

TRIALS = 2000


def _workloads():
    zipf = zipf_stream(n=48, m=3000, alpha=1.1, seed=0)
    unif = uniform_stream(48, 3000, seed=1)
    return [("zipf(1.1)", zipf), ("uniform", unif)]


def _measures():
    return [LpMeasure(2.0), L1L2Measure(), FairMeasure(1.0), HuberMeasure(1.0)]


def _run_experiment():
    lines = []
    worst_pvalue = 1.0
    for wname, stream in _workloads():
        freq = stream.frequencies()
        for measure in _measures():
            target = g_target(freq, measure)
            if isinstance(measure, LpMeasure) and measure.p > 1:

                def run(seed, _m=measure):
                    return TrulyPerfectLpSampler(
                        p=_m.p, n=stream.n, seed=seed
                    ).run(stream)

            else:

                def run(seed, _m=measure):
                    return TrulyPerfectGSampler(
                        _m, seed=seed, m_hint=len(stream)
                    ).run(stream)

            rep = evaluate(run, target, trials=TRIALS)
            worst_pvalue = min(worst_pvalue, rep.chi2_pvalue)
            lines.append(rep.row(f"{wname} / {measure.name}"))
    return lines, worst_pvalue


def test_e01_exactness_table(benchmark):
    lines, worst_pvalue = benchmark.pedantic(
        _run_experiment, rounds=1, iterations=1
    )
    write_table(
        "E01",
        "Framework 1.3 exactness — TV at noise floor, chi2 cannot reject",
        lines,
    )
    benchmark.extra_info["worst_chi2_pvalue"] = worst_pvalue
    # Shape assertion: no measure/workload shows detectable bias.
    assert worst_pvalue > 1e-4


@pytest.mark.parametrize("measure", [L1L2Measure(), HuberMeasure(1.0)],
                         ids=lambda m: m.name)
def test_e01_update_throughput(benchmark, measure):
    """Single-update cost of the pooled G-sampler (the O(1) claim's raw
    number; E15 sweeps it)."""
    stream = zipf_stream(n=48, m=5000, alpha=1.1, seed=2)
    items = list(stream)

    def replay():
        s = TrulyPerfectGSampler(measure, seed=0, m_hint=len(items))
        s.extend(items)
        return s

    benchmark(replay)
