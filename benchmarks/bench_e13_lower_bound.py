"""E13 — Theorem 1.2: the turnstile lower bound, executed.

Claims: (a) running the sampler→EQUALITY reduction with a b-bit
fingerprint sampler yields refutation error ≈ 2^{−b} — i.e. achieving
additive error γ takes ≈ log2(1/γ) bits, matching Ω(min{n, log 1/γ});
(b) the reduction solves EQUALITY perfectly with the Ω(n)-bit exact
sampler; (c) the bound formula's two regimes (γ-limited vs n-limited).
"""

import math

from conftest import write_table
from repro.lowerbound import (
    ExactTurnstileSampler,
    FingerprintSampler,
    measure_advantage,
    refutation_bound_bits,
)

N = 24


def _run_experiment():
    lines = [
        f"{'bits':>5} {'measured gamma':>15} {'2^-bits':>9} "
        f"{'advantage':>10} {'Thm 1.2 bound(bits)':>20}"
    ]
    gammas = {}
    for bits in (1, 2, 4, 6, 8, 12):
        rep = measure_advantage(
            lambda seed, b=bits: FingerprintSampler(N, bits=b, seed=seed),
            n=N,
            trials=600,
            state_bits=bits,
        )
        gamma = rep.refutation_error
        gammas[bits] = gamma
        bound = refutation_bound_bits(N, max(gamma, 1 / 600))
        lines.append(
            f"{bits:>5d} {gamma:>15.4f} {2.0**-bits:>9.4f} "
            f"{rep.advantage:>10.4f} {bound:>20.2f}"
        )
    exact = measure_advantage(
        lambda seed: ExactTurnstileSampler(N, seed=seed), n=N, trials=200
    )
    lines.append(
        f"exact (Omega(n) bits): refutation={exact.refutation_error:.4f} "
        f"advantage={exact.advantage:.4f}"
    )
    return lines, gammas, exact


def test_e13_lower_bound(benchmark):
    lines, gammas, exact = benchmark.pedantic(_run_experiment, rounds=1,
                                              iterations=1)
    write_table("E13", "Turnstile lower bound via EQUALITY (Thm 1.2)", lines)
    # gamma tracks 2^{-bits} within sampling noise for small b.
    assert abs(gammas[1] - 0.5) < 0.1
    assert abs(gammas[2] - 0.25) < 0.1
    assert gammas[8] < 0.02
    # The exact sampler solves equality perfectly.
    assert exact.refutation_error == 0.0
    assert exact.advantage == 1.0


def test_e13_bound_regimes(benchmark):
    def regimes():
        # γ-limited regime: bound grows with log(1/γ)...
        growing = [refutation_bound_bits(10**6, 2.0**-k) for k in (4, 16, 64)]
        # ...n-limited regime: bound saturates near n/8-ish.
        capped = [refutation_bound_bits(16, 2.0**-k) for k in (64, 128, 256)]
        return growing, capped

    growing, capped = benchmark(regimes)
    assert growing[0] < growing[1] < growing[2]
    assert max(capped) - min(capped) < 1e-9  # saturated at the n term
