"""E5 — Theorem 3.7: truly perfect matrix row sampling (L1,1 and L1,2).

Claim: row samples follow ``G(m_r)/F_G`` exactly for both row measures,
with the L1,1 sampler needing only ln(1/δ) instances and the L1,2 sampler
``√d·ln(1/δ)``.
"""

import numpy as np

from conftest import write_table
from repro.core import RowL1Measure, RowL2Measure, TrulyPerfectMatrixSampler
from repro.stats import evaluate, row_target
from repro.streams import matrix_stream


def _materialize(rows, cols, m, seed):
    ups = matrix_stream(rows, cols, m, row_weights=np.arange(1, rows + 1),
                        seed=seed)
    matrix = np.zeros((rows, cols), dtype=np.int64)
    for r, c in ups:
        matrix[r, c] += 1
    return ups, matrix


def _run_experiment():
    rows, cols = 10, 6
    ups, matrix = _materialize(rows, cols, 1200, seed=3)
    lines = []
    ok = True
    for measure in (RowL1Measure(), RowL2Measure()):
        target = row_target(matrix, measure)

        def run(seed, _m=measure):
            s = TrulyPerfectMatrixSampler(_m, d=cols, seed=seed, m_hint=len(ups))
            return s.run(ups)

        rep = evaluate(run, target, trials=1500)
        default = TrulyPerfectMatrixSampler(measure, d=cols, m_hint=len(ups))
        ok &= rep.chi2_pvalue > 1e-4
        lines.append(f"{rep.row(measure.name)} instances={default.instances}")
    return lines, ok


def test_e05_matrix_rows(benchmark):
    lines, ok = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_table("E05", "Matrix row sampling exactness (Theorem 3.7)", lines)
    assert ok


def test_e05_l12_instances_scale_with_sqrt_d(benchmark):
    def compute():
        return [
            TrulyPerfectMatrixSampler(RowL2Measure(), d=d, m_hint=1000).instances
            for d in (4, 64)
        ]

    small, large = benchmark(compute)
    assert large / small >= 2.5  # √(64/4) = 4, with rounding slack
