"""E16 — the introduction's motivation: γ-error accumulates across
successive stream portions; truly perfect samplers don't drift.

Claims: (a) for a γ-biased sampler the joint output distribution over s
portions drifts like 1 − (1−γ)^s ≈ s·γ; (b) the truly perfect sampler's
measured per-portion TV stays at the Monte-Carlo floor for every portion,
so its joint drift bound stays at noise level for any s.
"""

import numpy as np

from conftest import write_table
from repro.core import LpMeasure, TrulyPerfectGSampler
from repro.perfect import BiasedGSampler
from repro.stats import (
    bernoulli_accumulation,
    evaluate,
    joint_tv_upper,
    lp_target,
)
from repro.streams import zipf_stream

N = 32
PORTIONS = [1, 8, 32, 128]
GAMMA = 0.02


def _portion_stream(k):
    return zipf_stream(n=N, m=400, alpha=1.0, seed=900 + k)


def _run_experiment():
    lines = []
    # Analytic drift of the γ-biased sampler (its per-portion TV is exactly
    # γ·(1 − target mass of the planted set), measured below).
    stream = _portion_stream(0)
    biased = BiasedGSampler(LpMeasure(1.0), N, gamma=GAMMA, bias_items=[0], seed=0)
    biased.extend(stream)
    per_portion_tv_biased = float(
        0.5 * np.abs(biased.output_distribution() - biased.target_distribution()).sum()
    )
    # Truly perfect sampler: measured per-portion TV (Monte-Carlo only).
    target = lp_target(stream.frequencies(), 1.0)

    def run(seed):
        return TrulyPerfectGSampler(LpMeasure(1.0), seed=seed, m_hint=400).run(stream)

    rep = evaluate(run, target, trials=3000)
    lines.append(
        f"per-portion TV: biased(gamma={GAMMA}) = {per_portion_tv_biased:.4f}, "
        f"truly perfect = {rep.tv:.4f} (noise {rep.tv_noise_floor:.4f})"
    )
    lines.append(f"{'portions':>9} {'biased joint TV':>16} {'truly perfect bound':>20}")
    drifts = []
    for s in PORTIONS:
        joint_biased = bernoulli_accumulation(per_portion_tv_biased, s)
        joint_ours = joint_tv_upper(0.0, s)  # exact distribution ⇒ 0 drift
        drifts.append(joint_biased)
        lines.append(f"{s:>9d} {joint_biased:>16.4f} {joint_ours:>20.4f}")
    return lines, drifts, rep


def test_e16_accumulation(benchmark):
    lines, drifts, rep = benchmark.pedantic(_run_experiment, rounds=1,
                                            iterations=1)
    write_table("E16", "Variation-distance accumulation across portions", lines)
    # Drift grows monotonically and becomes substantial at 128 portions.
    assert drifts == sorted(drifts)
    assert drifts[-1] > 0.5
    # The truly perfect sampler shows no measurable per-portion bias.
    assert rep.chi2_pvalue > 1e-4
    assert rep.tv < 3 * rep.tv_noise_floor


def test_e16_empirical_multi_portion_bias(benchmark):
    """Measured (not analytic) drift: count how often the planted item is
    output across portions; biased rate ≈ target + γ·(1−mass)."""

    def run_experiment():
        stream = _portion_stream(1)
        target_mass = lp_target(stream.frequencies(), 1.0)[0]
        trials = 1500
        hits_biased = 0
        hits_perfect = 0
        for seed in range(trials):
            b = BiasedGSampler(LpMeasure(1.0), N, gamma=GAMMA, bias_items=[0],
                               seed=seed)
            r = b.run(stream)
            hits_biased += r.is_item and r.item == 0
            t = TrulyPerfectGSampler(LpMeasure(1.0), seed=seed, m_hint=400)
            r = t.run(stream)
            hits_perfect += r.is_item and r.item == 0
        return target_mass, hits_biased / trials, hits_perfect / trials

    target_mass, rate_biased, rate_perfect = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    assert rate_biased > rate_perfect  # the planted bias is real
    assert abs(rate_perfect - target_mass) < 0.05
