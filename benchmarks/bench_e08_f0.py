"""E8 — Theorems 5.2 / Corollary 5.3: truly perfect F0 sampling in both
regimes and on sliding windows.

Claims: (a) uniformity over the support in the sparse (F0 ≤ √n) and dense
(F0 > √n) regimes; (b) FAIL rate ≤ δ after amplification; (c) the sampler
reports the exact frequency of the returned index; (d) space scales as
√n words.
"""

import numpy as np

from conftest import write_table
from repro.core import TrulyPerfectF0Sampler
from repro.sliding_window import SlidingWindowF0Sampler
from repro.stats import evaluate, f0_target
from repro.streams import sparse_support_stream, zipf_stream


def _run_experiment():
    lines = []
    ok = True
    # Sparse regime.
    sparse = sparse_support_stream(900, support=12, m=2000, seed=0)
    target = f0_target(sparse.frequencies())

    def run_sparse(seed):
        return TrulyPerfectF0Sampler(900, delta=0.05, seed=seed).run(sparse)

    rep = evaluate(run_sparse, target, trials=1500)
    ok &= rep.chi2_pvalue > 1e-4 and rep.fail_rate == 0.0
    lines.append(rep.row("sparse regime (F0=12 « √n=30)"))

    # Dense regime.
    dense = zipf_stream(n=64, m=3000, alpha=0.8, seed=1)
    target_d = f0_target(dense.frequencies())

    def run_dense(seed):
        return TrulyPerfectF0Sampler(64, delta=0.05, seed=seed).run(dense)

    rep_d = evaluate(run_dense, target_d, trials=1500)
    ok &= rep_d.chi2_pvalue > 1e-4 and rep_d.fail_rate <= 0.06
    lines.append(rep_d.row("dense regime (F0≈64 > √n=8)"))

    # Sliding window.
    window = 400
    wtarget = f0_target(dense.window_frequencies(window))

    def run_w(seed):
        return SlidingWindowF0Sampler(64, window=window, seed=seed).run(dense)

    rep_w = evaluate(run_w, wtarget, trials=1500)
    ok &= rep_w.chi2_pvalue > 1e-4
    lines.append(rep_w.row(f"sliding window W={window}"))

    # Frequency reporting.
    freq = dense.frequencies()
    mismatches = 0
    for seed in range(100):
        res = TrulyPerfectF0Sampler(64, seed=seed).run(dense)
        if res.is_item and res.metadata.get("frequency") != freq[res.item]:
            mismatches += 1
    ok &= mismatches == 0
    lines.append(f"frequency metadata exact on 100 draws: {mismatches} mismatches")
    return lines, ok


def test_e08_f0_table(benchmark):
    lines, ok = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_table("E08", "Truly perfect F0 sampling (Thm 5.2, Cor 5.3)", lines)
    assert ok


def test_e08_space_scales_sqrt_n(benchmark):
    def measure_space():
        words = {}
        for n in (100, 10_000):
            s = TrulyPerfectF0Sampler(n, delta=0.05, seed=0)
            stream = zipf_stream(n=n, m=2000, alpha=0.9, seed=2)
            s.extend(stream)
            words[n] = s.space_words
        return words

    words = benchmark.pedantic(measure_space, rounds=1, iterations=1)
    ratio = words[10_000] / words[100]
    assert 4 <= ratio <= 25  # √(10000/100) = 10
