"""E4 — Corollary 3.6: M-estimator samplers need O(1) instances
(O(log n) bits) and are exactly distributed.

Claim: the default pool size is a constant independent of n and m for
L1−L2 / Fair / Huber, and each sampler's output matches ``G(f_i)/F_G``.
"""

from conftest import write_table
from repro.core import FairMeasure, HuberMeasure, L1L2Measure, TrulyPerfectGSampler
from repro.stats import evaluate, g_target
from repro.streams import zipf_stream

MEASURES = [L1L2Measure(), FairMeasure(1.0), HuberMeasure(1.0)]


def _run_experiment():
    lines = []
    ok = True
    for m_len in (500, 5000):
        stream = zipf_stream(n=64, m=m_len, alpha=1.2, seed=m_len)
        freq = stream.frequencies()
        for measure in MEASURES:
            instances = TrulyPerfectGSampler.default_instances(
                measure, delta=0.05, m_hint=m_len
            )
            target = g_target(freq, measure)

            def run(seed, _m=measure):
                return TrulyPerfectGSampler(_m, seed=seed, m_hint=m_len).run(stream)

            rep = evaluate(run, target, trials=1000)
            ok &= rep.chi2_pvalue > 1e-4 and rep.fail_rate <= 0.06
            lines.append(
                f"m={m_len:<6d} {rep.row(measure.name):s} instances={instances}"
            )
    return lines, ok


def test_e04_m_estimators(benchmark):
    lines, ok = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_table("E04", "M-estimator samplers: O(1) instances, exact dist", lines)
    assert ok


def test_e04_instances_constant_in_m(benchmark):
    def compute():
        return {
            m.name: [
                TrulyPerfectGSampler.default_instances(m, 0.05, m_hint=h)
                for h in (10**2, 10**4, 10**6)
            ]
            for m in MEASURES
        }

    table = benchmark(compute)
    for name, counts in table.items():
        assert len(set(counts)) == 1, f"{name} pool size depends on m: {counts}"
