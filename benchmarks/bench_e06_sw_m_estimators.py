"""E6 — Theorem 4.1 / Corollary 4.2: sliding-window M-estimator samplers
sample exactly from the *active window's* distribution.

Claim: for several window sizes the output matches ``G(f^{(W)}_i)/F_G``
computed over the window frequencies, and expired items carry zero mass.
"""

from conftest import write_table
from repro.core import FairMeasure, HuberMeasure, L1L2Measure
from repro.sliding_window import SlidingWindowGSampler
from repro.stats import evaluate, g_target
from repro.streams import zipf_stream


def _run_experiment():
    lines = []
    ok = True
    stream = zipf_stream(n=32, m=1500, alpha=1.0, seed=9)
    for window in (150, 400, 900):
        wfreq = stream.window_frequencies(window)
        for measure in (L1L2Measure(), FairMeasure(1.0), HuberMeasure(1.0)):
            target = g_target(wfreq, measure)

            def run(seed, _m=measure, _w=window):
                return SlidingWindowGSampler(_m, window=_w, seed=seed).run(stream)

            rep = evaluate(run, target, trials=800)
            ok &= rep.chi2_pvalue > 1e-4 and rep.fail_rate <= 0.08
            lines.append(f"W={window:<5d} {rep.row(measure.name)}")
    return lines, ok


def test_e06_sw_m_estimators(benchmark):
    lines, ok = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_table("E06", "Sliding-window M-estimator exactness (Thm 4.1)", lines)
    assert ok


def test_e06_update_cost(benchmark):
    stream = list(zipf_stream(n=32, m=3000, alpha=1.0, seed=10))

    def replay():
        s = SlidingWindowGSampler(HuberMeasure(1.0), window=500, seed=0)
        s.extend(stream)
        return s

    benchmark(replay)
