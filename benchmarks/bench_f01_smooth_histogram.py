"""F1 — Figure 1: the smooth-histogram paradigm.

Claims: (a) the number of live checkpoints stays O((1/β) log F_p) while
the stream grows unboundedly; (b) the two sandwiching checkpoints bracket
the active window's value (the figure's geometry); (c) the deterministic
(1 ± α) estimate quality holds at every queried prefix.
"""

from conftest import write_table
from repro.sketches.lp_norm import exact_fp
from repro.sketches.smooth_histogram import (
    ExactSuffixFp,
    SmoothHistogram,
    expected_checkpoints,
    fp_smoothness,
)
from repro.streams import zipf_stream


def _run_experiment():
    p, alpha = 2.0, 0.5
    __, beta = fp_smoothness(p, alpha)
    lines = [f"p={p} alpha={alpha} beta={beta:.4f}"]
    worst_ratio = 0.0
    max_checkpoints = 0
    for window in (128, 512):
        stream = zipf_stream(n=64, m=4 * window, alpha=1.1, seed=window)
        hist = SmoothHistogram(lambda: ExactSuffixFp(p), beta, window)
        checkpoints_trace = []
        for t, item in enumerate(stream, 1):
            hist.update(item)
            if t % window == 0:
                checkpoints_trace.append(hist.checkpoint_count)
                truth = exact_fp(stream.prefix(t).window_frequencies(window), p)
                est = hist.estimate()
                if truth > 0:
                    worst_ratio = max(worst_ratio, abs(est - truth) / truth)
        max_checkpoints = max(max_checkpoints, max(checkpoints_trace))
        bound = expected_checkpoints(beta, exact_fp(stream.frequencies(), p))
        lines.append(
            f"W={window:<5d} checkpoints over time={checkpoints_trace} "
            f"(bound {bound}) worst rel err so far={worst_ratio:.3f}"
        )
    return lines, worst_ratio, max_checkpoints


def test_f01_smooth_histogram(benchmark):
    lines, worst_ratio, max_checkpoints = benchmark.pedantic(
        _run_experiment, rounds=1, iterations=1
    )
    write_table("F01", "Smooth histogram checkpoints & sandwich (Figure 1)",
                lines)
    assert worst_ratio <= 0.5 + 1e-9  # the (1 − α) guarantee, α = 0.5
    assert max_checkpoints < 400


def test_f01_update_throughput(benchmark):
    p = 2.0
    __, beta = fp_smoothness(p, 0.5)
    stream = list(zipf_stream(n=64, m=2000, alpha=1.1, seed=3))

    def replay():
        hist = SmoothHistogram(lambda: ExactSuffixFp(p), beta, 256)
        for item in stream:
            hist.update(item)
        return hist

    benchmark(replay)
