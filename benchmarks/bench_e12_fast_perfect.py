"""E12 — Theorem B.9 / Algorithm 8: fast perfect (γ > 0) Lp sampling for
p < 1 via exponential scaling + weighted Misra-Gries.

Claim: the output TV from the Lp target shrinks as the duplication factor
(the paper's n^c) grows — the γ ↔ cost trade-off that truly perfect
samplers escape; the exact-argmax oracle sits at TV ≈ 0 for reference.
"""

import numpy as np

from conftest import write_table
from repro.perfect import ExponentialAssignment, FastPerfectLpSampler
from repro.stats import lp_target, total_variation
from repro.stats.harness import collect_outcomes, empirical_distribution
from repro.streams import stream_from_frequencies

FREQ = np.array([1, 2, 4, 8, 16])
STREAM = stream_from_frequencies(FREQ, order="random", seed=8)
P = 0.5
TARGET = lp_target(FREQ, P)


def _tv_at_duplication(dup: int, trials: int = 1200) -> tuple[float, float]:
    def run(seed):
        return FastPerfectLpSampler(P, len(FREQ), duplication=dup,
                                    seed=seed).run(STREAM)

    counts, fails, __ = collect_outcomes(run, trials=trials)
    if sum(counts.values()) == 0:
        return 1.0, 1.0
    dist = empirical_distribution(counts, len(FREQ))
    return total_variation(dist, TARGET), fails / trials


def _run_experiment():
    lines = []
    tvs = []
    for dup in (1, 4, 16, 64):
        tv, fail = _tv_at_duplication(dup)
        tvs.append(tv)
        lines.append(f"duplication={dup:<4d} TV={tv:.4f} fail-rate={fail:.3f}")
    # Oracle reference: exact argmax of the scaled vector.
    counts = np.zeros(len(FREQ))
    for seed in range(2000):
        counts[ExponentialAssignment(P, seed=seed).argmax_exact(FREQ)] += 1
    oracle_tv = total_variation(counts / 2000, TARGET)
    lines.append(f"exact-argmax oracle   TV={oracle_tv:.4f} (sampling noise only)")
    return lines, tvs, oracle_tv


def test_e12_fast_perfect(benchmark):
    lines, tvs, oracle_tv = benchmark.pedantic(_run_experiment, rounds=1,
                                               iterations=1)
    write_table("E12", "Perfect p<1 sampler: TV vs duplication (Thm B.9)", lines)
    benchmark.extra_info["tvs"] = tvs
    # Shape: error shrinks with duplication over the well-sampled range
    # (the dup=64 row keeps only ~half its trials after the dominance
    # test, so its TV mixes bias with Monte-Carlo noise — reported but
    # not asserted); the exact-argmax oracle sits at the noise level.
    assert tvs[2] <= tvs[0] + 0.02  # dup 16 vs dup 1
    assert tvs[2] < 0.1
    assert oracle_tv < 0.05


def test_e12_update_cost_scales_with_duplication(benchmark):
    """The n^{O(c)} update-time burden Theorem 1.4 removes."""
    import time

    def timing():
        out = {}
        for dup in (1, 8, 32):
            s = FastPerfectLpSampler(P, 64, duplication=dup, seed=0)
            t0 = time.perf_counter()
            for i in range(400):
                s.update(i % 64)
            out[dup] = time.perf_counter() - t0
        return out

    out = benchmark.pedantic(timing, rounds=1, iterations=1)
    assert out[32] > 4 * out[1]
