"""E3 — Theorem 3.5: for ``p ∈ (0, 1]`` the instance count scales as
``m^{1−p}`` (ζ = 1, acceptance ≥ F_p/m ≥ m^{p−1}).

Claim: measured per-instance acceptance ≈ F_p/m, so the instances needed
for constant success scale with slope ``1−p`` in ``m``.
"""

from conftest import loglog_slope, write_table
from repro.core import TrulyPerfectLpSampler, lp_instance_bound
from repro.sketches.lp_norm import exact_fp
from repro.streams import uniform_stream


def _acceptance(p: float, m: int, trials: int = 300) -> tuple[float, float]:
    stream = uniform_stream(64, m, seed=m)
    hits = 0
    for seed in range(trials):
        s = TrulyPerfectLpSampler(p=p, n=64, m_hint=m, instances=1, seed=seed)
        if s.run(stream).is_item:
            hits += 1
    predicted = exact_fp(stream.frequencies(), p) / m
    return hits / trials, predicted


def _run_experiment():
    lines = []
    slopes = {}
    ms = [250, 1000, 4000]
    for p in (0.25, 0.5, 0.75):
        needed = []
        for m in ms:
            rate, predicted = _acceptance(p, m)
            needed.append(1.0 / max(rate, 1e-4))
            lines.append(
                f"p={p:<5} m={m:<6d} accept={rate:7.4f} "
                f"predicted(F_p/m)={predicted:7.4f} "
                f"theorem-instances={lp_instance_bound(p, 64, 0.5, m_hint=m):6d}"
            )
        slopes[p] = loglog_slope([float(x) for x in ms], needed)
        lines.append(
            f"p={p}: measured slope {slopes[p]:.3f} (theory 1-p = {1-p:.3f})"
        )
    return lines, slopes


def test_e03_sub1_scaling(benchmark):
    lines, slopes = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_table("E03", "Sub-unit Lp instance scaling vs m (Theorem 3.5)", lines)
    for p, slope in slopes.items():
        benchmark.extra_info[f"slope_p{p}"] = slope
        assert abs(slope - (1 - p)) < 0.3
