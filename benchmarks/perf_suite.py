#!/usr/bin/env python
"""The canonical query-fast-path + serving perf suite (E23).

Measures, on one process with fixed seeds:

* **ingest throughput** — items/second through the sharded engine's
  batched ingest path, per shard count;
* **query latency** — p50/p99 of ``ShardedSamplerEngine.sample()`` under
  mixed read/write workloads at read:write ratios 1:100, 1:1, and 100:1
  for K ∈ {1, 8, 32}, with the merged-view cache on (``cached``) vs. the
  fold-per-query reference path (``fresh``, ``query_cache=False``);
* **sample_many scaling** — one ``sample_many(k)`` call vs. ``k``
  back-to-back ``sample()`` calls on the cached engine;
* **served scenario (PR 5)** — the same mixed workload through
  :class:`repro.serving.SamplerService` (4 ingest workers, 8 concurrent
  paced query clients, K=8) vs. the single-threaded engine loop that
  interleaves the identical write batches and cached-fold queries:
  served query p50/p99 off the published fold, and aggregate ingest
  throughput while serving.
* **obs overhead (PR 6)** — the identical served workload with the
  metrics registry enabled vs. disabled (``metrics=False``), best of
  several reps per mode: served ingest throughput and query p50 with
  metrics on must stay within 10% of the no-op configuration.
* **audit overhead (PR 7)** — the identical served workload with the
  statistical audit plane on (shadow truth fed per accepted batch +
  periodic audit ticks drawing dedicated ``sample_many`` batches) vs.
  off, metrics enabled in both: audited ingest throughput must stay
  ≥0.9x and query p50 ≤1.10x the audit-off run.
* **parallel ingest scaling (PR 8)** — identical write workloads
  through the thread-mode and process-mode ingest planes at 1, 2, and
  4 workers (K=8, best of ``PARALLEL_REPS``, steady-state: worker
  startup excluded), preceded by a process-mode serialized bitwise
  preflight against direct engine calls.
* **ingest kernel (PR 9)** — large-batch ingest throughput through the
  shared-index two-phase kernel at K ∈ {1, 8, 32}, identical stream and
  chunk size for every K (best of ``INGEST_KERNEL_REPS``), preceded by
  a bitwise preflight: shared-index ingest, the materialized-subchunk
  reference path (``shared_index=False``), and item-at-a-time chunking
  must all land the identical engine snapshot and answer the identical
  sample.
* **telemetry overhead (PR 10)** — the identical process-mode ingest
  workload with the cross-process worker telemetry plane on
  (``worker_telemetry=True``: worker-side registries, span shipping,
  snapshot merging) vs. off, metrics enabled in both: telemetry-on
  ingest must stay ≥0.95x the telemetry-off rate.  The process-mode
  bitwise preflight above already runs with telemetry default-on, so
  the determinism contract and the overhead gate cover the same plane.

Results land in machine-readable JSON (default: ``BENCH_E23.json`` at
the repo root) so the bench trajectory is tracked from PR 4 forward.

The suite *gates* itself (exit code 1 on failure):

* cached-query p50 must not regress beyond 2x the fresh-fold baseline
  recorded in the same run, for every workload;
* the read-heavy (100:1, K=8) workload must show a ≥10x cached p50 win;
* ``sample_many(1000)`` must be ≥5x faster than 1000 ``sample()`` calls;
* cached and fresh folds must return identical samples for identical
  seeds (checked bitwise before any timing);
* serialized serving mode must answer bitwise-identically to direct
  engine calls (checked before any serving timing);
* served query p50 must stay within 3x the single-threaded cached-fold
  p50 of the same workload, while the served path answers at least as
  many queries as the baseline did;
* served aggregate ingest throughput must be ≥2x the single-threaded
  batched path serving that workload (the engine loop pays a refold per
  query burst; the service amortizes folds across its refresh cadence —
  that amortization, not thread parallelism, is what the gate pins, so
  it holds on a single-core runner too);
* metrics-enabled served ingest throughput must be ≥0.9x and query p50
  ≤1.10x the metrics-disabled run (instrumentation must stay cheap);
* audit-enabled served ingest throughput must be ≥0.9x and query p50
  ≤1.10x the audit-off run (self-verification must stay cheap);
* telemetry-enabled process-mode ingest throughput must be ≥0.95x the
  telemetry-off run (worker metric/span shipping piggybacks on the
  pull cadence — it must not tax the ingest path);
* ingest-kernel K=8 throughput must be ≥0.5x the K=1 rate on the same
  stream and chunk size (sharding must not collapse single-core ingest
  — the shared index is built once per batch, not per shard), and the
  K=1 rate itself must clear an absolute floor so the ratio cannot pass
  by both sides degenerating;
* parallel ingest gates are hardware-adaptive: every mode/worker-count
  combination must clear an absolute throughput floor and adding
  workers must never collapse (≥0.85x the previous step while within
  the host's cores; oversubscribed steps — pure time-slicing overhead —
  only guard against cliffs at ≥0.40x); the strict gates —
  process ≥1.5x thread at 4 workers, ingest *increasing* with worker
  count — arm only where the host has the cores to express them
  (≥4 and ≥2 respectively) and are recorded as skipped-for-cores in
  the report otherwise, so a pass on a small box is visibly weaker.

Run ``--smoke`` in CI for a reduced-scale pass with the same gates.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine import ShardedSamplerEngine  # noqa: E402
from repro.serving import SamplerService  # noqa: E402
from repro.streams.generators import zipf_stream  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent

CONFIG = {"kind": "g", "measure": {"name": "huber"}, "instances": 64}
RATIOS = {"1:100": (1, 100), "1:1": (1, 1), "100:1": (100, 1)}
SHARD_COUNTS = (1, 8, 32)

#: Gate thresholds (see module docstring).
MAX_CACHED_REGRESSION = 2.0
MIN_READ_HEAVY_SPEEDUP = 10.0
MIN_SAMPLE_MANY_SPEEDUP = 5.0
MAX_SERVED_P50_RATIO = 3.0
MIN_SERVED_INGEST_SPEEDUP = 2.0
MIN_OBS_THROUGHPUT_RATIO = 0.9
MAX_OBS_P50_RATIO = 1.10
MIN_AUDIT_THROUGHPUT_RATIO = 0.9
MAX_AUDIT_P50_RATIO = 1.10
#: Cross-process telemetry (PR 10): process-mode ingest with the worker
#: telemetry plane on must hold >= this fraction of the telemetry-off
#: rate — shipping snapshots on pull replies is piggyback, not a tax.
MIN_TELEMETRY_THROUGHPUT_RATIO = 0.95
SERVED_WORKERS = 4
SERVED_CLIENTS = 8
SERVED_SHARDS = 8
OBS_REPS = 3
#: Parallel-ingest scaling gates.  The strict "process beats threads"
#: comparison only means something when the host can actually run the
#: workers in parallel, so it arms at >= 4 cores; below that the suite
#: gates monotonicity-with-tolerance within the host's cores, a cliff
#: guard on oversubscribed steps (extra workers beyond the cores are
#: pure coordination overhead — a 1-core box measures ~0.55x per
#: doubling for four processes time-slicing one CPU, so the guard only
#: flags collapse, e.g. a stalled pipe or a deadlocked worker), plus an
#: absolute throughput floor, and records the strict gates as
#: skipped-for-cores in the report.
PARALLEL_WORKER_STEPS = (1, 2, 4)
PARALLEL_REPS = 2
MIN_PROCESS_VS_THREAD_AT_4 = 1.5
PARALLEL_TOL_IN_CORES = 0.85
PARALLEL_TOL_OVERSUBSCRIBED = 0.40
MIN_PARALLEL_INGEST_FLOOR = 20_000  # items/s, any mode, any worker count
#: Ingest-kernel scenario (PR 9).  One chunk size for every shard
#: count — the large-batch serving regime the two-phase kernel exists
#: for; the K=8 rate must hold ≥ this fraction of the K=1 rate, and
#: the K=1 rate must clear the absolute floor (so the ratio gate can
#: never pass by mutual collapse).
INGEST_KERNEL_CHUNK = 1 << 20
INGEST_KERNEL_REPS = 3
MIN_INGEST_KERNEL_K8_RATIO = 0.5
MIN_INGEST_KERNEL_K1_FLOOR = 2_000_000  # items/s


def _percentiles(latencies_ns: list[int]) -> dict:
    lat_us = sorted(ns / 1e3 for ns in latencies_ns)
    return {
        "p50_us": statistics.median(lat_us),
        "p99_us": lat_us[min(len(lat_us) - 1, int(0.99 * len(lat_us)))],
        "queries": len(lat_us),
    }


def _build(shards: int, *, cache: bool, seed: int = 7) -> ShardedSamplerEngine:
    return ShardedSamplerEngine(
        CONFIG, shards=shards, seed=seed, query_cache=cache
    )


def check_cached_equals_fresh(items: np.ndarray) -> None:
    """Bitwise gate: for identical seeds, the cached path's first query
    after any (re)fold equals the fresh fold-per-query answer."""
    cached = _build(8, cache=True)
    fresh = _build(8, cache=False)
    for chunk in np.array_split(items, 4):
        cached.ingest(chunk)
        fresh.ingest(chunk)
        a, b = cached.sample(), fresh.sample()
        if a != b:
            raise AssertionError(f"cached {a} != fresh {b}")


def bench_ingest(items: np.ndarray, chunk: int) -> list[dict]:
    out = []
    for shards in SHARD_COUNTS:
        engine = _build(shards, cache=True)
        start = time.perf_counter()
        engine.ingest(items, chunk_size=chunk)
        elapsed = time.perf_counter() - start
        out.append(
            {
                "shards": shards,
                "items": int(items.size),
                "seconds": elapsed,
                "items_per_sec": items.size / elapsed,
            }
        )
    return out


def _normalized(state):
    """Snapshot trees carry numpy arrays; normalize to plain lists so
    bitwise-equal states compare equal regardless of container type."""
    if isinstance(state, dict):
        return {k: _normalized(v) for k, v in state.items()}
    if isinstance(state, (list, tuple)):
        return [_normalized(v) for v in state]
    if isinstance(state, np.ndarray):
        return [_normalized(v) for v in state.tolist()]
    if isinstance(state, np.generic):
        return state.item()
    return state


def check_ingest_kernel_bitwise(items: np.ndarray) -> None:
    """Bitwise gate for the ingest-kernel scenario: the shared-index
    two-phase path, the materialized-subchunk reference path, and
    item-at-a-time chunking must all produce the identical engine state
    (full snapshot: counts, offsets, heaps, RNG streams) and the
    identical next sample.  Speed on a kernel that drifts from the
    scalar semantics would be meaningless."""
    shared = ShardedSamplerEngine(CONFIG, shards=8, seed=7)
    shared.ingest(items, chunk_size=INGEST_KERNEL_CHUNK)
    reference = ShardedSamplerEngine(CONFIG, shards=8, seed=7)
    reference.ingest(items, chunk_size=INGEST_KERNEL_CHUNK, shared_index=False)
    stepwise = ShardedSamplerEngine(CONFIG, shards=8, seed=7)
    stepwise.ingest(items, chunk_size=1, shared_index=False)
    want = _normalized(shared.snapshot())
    if _normalized(reference.snapshot()) != want:
        raise AssertionError(
            "shared-index ingest state != materialized-subchunk reference"
        )
    if _normalized(stepwise.snapshot()) != want:
        raise AssertionError(
            "shared-index ingest state != item-at-a-time chunking"
        )
    a, b, c = shared.sample(), reference.sample(), stepwise.sample()
    if not (a == b == c):
        raise AssertionError(f"kernel paths sample differently: {a} {b} {c}")


def bench_ingest_kernel(items: np.ndarray) -> dict:
    """The PR 9 scenario: large-batch ingest through the two-phase
    shared-index kernel at every shard count, identical stream and
    chunk size (best of ``INGEST_KERNEL_REPS`` — gates compare
    capability, not scheduler jitter)."""
    rows = []
    for shards in SHARD_COUNTS:
        wall = float("inf")
        for __ in range(INGEST_KERNEL_REPS):
            engine = _build(shards, cache=True)
            t0 = time.perf_counter()
            engine.ingest(items, chunk_size=INGEST_KERNEL_CHUNK)
            wall = min(wall, time.perf_counter() - t0)
        rows.append(
            {
                "shards": shards,
                "items": int(items.size),
                "reps": INGEST_KERNEL_REPS,
                "chunk_size": INGEST_KERNEL_CHUNK,
                "seconds": wall,
                "items_per_sec": items.size / wall,
            }
        )
    by_k = {row["shards"]: row["items_per_sec"] for row in rows}
    return {
        "chunk_size": INGEST_KERNEL_CHUNK,
        "runs": rows,
        "k8_over_k1": by_k[8] / by_k[1],
        "k32_over_k1": by_k[32] / by_k[1],
    }


def bench_queries(
    items: np.ndarray, queries: int, write_batch: int
) -> list[dict]:
    """Interleave reads and writes at each ratio and time every read.

    Each mode runs an untimed warmup pass (a few write/query cycles)
    before measurement so process warmup (allocator, branch caches)
    does not systematically penalize whichever mode runs first — the
    self-gating cached-vs-fresh ratio must reflect the steady state.
    """
    rows = []
    for shards in SHARD_COUNTS:
        for label, (reads, writes) in RATIOS.items():
            row = {"shards": shards, "ratio": label}
            for mode, cache in (("cached", True), ("fresh", False)):
                engine = _build(shards, cache=cache)
                engine.ingest(items)
                for __ in range(3):  # untimed warmup cycles
                    engine.ingest(items[:write_batch])
                    engine.sample()
                    engine.sample()
                latencies: list[int] = []
                done_reads = 0
                cursor = 0
                while done_reads < queries:
                    for __ in range(writes):
                        lo = cursor % items.size
                        batch = items[lo:lo + write_batch]
                        if batch.size:
                            engine.ingest(batch)
                        cursor += write_batch
                    for __ in range(reads):
                        if done_reads >= queries:
                            break
                        t0 = time.perf_counter_ns()
                        engine.sample()
                        latencies.append(time.perf_counter_ns() - t0)
                        done_reads += 1
                row[mode] = _percentiles(latencies)
            row["speedup_p50"] = row["fresh"]["p50_us"] / row["cached"]["p50_us"]
            rows.append(row)
    return rows


def bench_sample_many(items: np.ndarray, k: int) -> dict:
    engine = _build(8, cache=True)
    engine.ingest(items)
    engine.sample()  # warm the fold
    t0 = time.perf_counter()
    engine.sample_many(k)
    many_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for __ in range(k):
        engine.sample()
    loop_s = time.perf_counter() - t0
    return {
        "k": k,
        "sample_many_seconds": many_s,
        "loop_seconds": loop_s,
        "speedup": loop_s / many_s,
    }


def check_serialized_equals_direct(items: np.ndarray) -> None:
    """Bitwise gate: serialized serving mode replays the request
    sequence exactly as direct engine calls would."""
    engine = ShardedSamplerEngine(CONFIG, shards=SERVED_SHARDS, seed=7)
    with SamplerService(
        CONFIG, shards=SERVED_SHARDS, seed=7, serialized=True,
        compact_interval=None,
    ) as svc:
        for chunk in np.array_split(items, 4):
            svc.submit(chunk)
            engine.ingest(chunk)
            a, b = svc.sample(), engine.sample()
            if a != b:
                raise AssertionError(f"served {a} != direct {b}")


def bench_served(
    preload: np.ndarray, work: np.ndarray, write_batch: int
) -> dict:
    """The PR 5 serving scenario: identical write/query workloads through
    the single-threaded engine loop vs. the concurrent service.

    Baseline: one thread interleaves batched ingest with one cached-fold
    query per write batch (every query re-folds — the batch just dirtied
    all shards).  Served: the same batches go through 4 ingest workers
    while 8 paced client threads query the published fold lock-free; the
    run continues until the served path has answered at least as many
    queries as the baseline did, so the throughput comparison covers no
    less query work.
    """
    batches = work.size // write_batch

    # -- single-threaded baseline ------------------------------------------
    engine = ShardedSamplerEngine(CONFIG, shards=SERVED_SHARDS, seed=7)
    engine.ingest(preload)
    engine.sample()  # warm the fold
    base_lat: list[int] = []
    t0 = time.perf_counter()
    for w in range(batches):
        engine.ingest(work[w * write_batch:(w + 1) * write_batch])
        q0 = time.perf_counter_ns()
        engine.sample()
        base_lat.append(time.perf_counter_ns() - q0)
    base_wall = time.perf_counter() - t0

    # -- served --------------------------------------------------------------
    served_lat: list[int] = []
    served_done = threading.Event()
    lat_lock = threading.Lock()
    with SamplerService(
        CONFIG,
        shards=SERVED_SHARDS,
        seed=7,
        ingest_workers=SERVED_WORKERS,
        refresh_interval=0.02,
    ) as svc:
        svc.submit(preload)
        svc.flush()
        svc.refresh()

        def client() -> None:
            mine: list[tuple[int, int]] = []
            while not served_done.is_set():
                q0 = time.perf_counter_ns()
                svc.sample()
                mine.append((q0, time.perf_counter_ns() - q0))
                time.sleep(0.004)
            with lat_lock:
                served_lat.extend(mine)

        clients = [
            threading.Thread(target=client) for __ in range(SERVED_CLIENTS)
        ]
        for thread in clients:
            thread.start()
        t0 = time.perf_counter()
        for w in range(batches):
            svc.submit(work[w * write_batch:(w + 1) * write_batch])
        svc.flush()
        served_wall = time.perf_counter() - t0
        flush_ns = time.perf_counter_ns()
        # Fairness: keep serving until at least the baseline's query count
        # has been answered concurrently.
        deadline = time.monotonic() + 60.0
        while (
            svc.stats()["query"]["served"] < len(base_lat)
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)
        served_done.set()
        for thread in clients:
            thread.join()
        stats = svc.stats()

    # The p50 gate must reflect queries answered *under write load* —
    # the fairness tail after flush hits a quiescent fold and would
    # otherwise dilute a real under-load regression.
    under_load = [lat for start, lat in served_lat if start < flush_ns]
    tail = [lat for start, lat in served_lat if start >= flush_ns]
    if not under_load:
        under_load = tail  # degenerate ultra-fast run; keep the suite robust

    return {
        "shards": SERVED_SHARDS,
        "workers": SERVED_WORKERS,
        "clients": SERVED_CLIENTS,
        "items": int(work.size),
        "baseline": {
            "wall_seconds": base_wall,
            "items_per_sec": work.size / base_wall,
            **_percentiles(base_lat),
        },
        "served": {
            "wall_seconds": served_wall,
            "items_per_sec": work.size / served_wall,
            "fold_refreshes": stats["query"]["refreshes"],
            "queries_total": len(served_lat),
            "quiescent_tail_queries": len(tail),
            **_percentiles(under_load),
        },
        "ingest_speedup": base_wall / served_wall,
        "p50_ratio": (
            statistics.median(x / 1e3 for x in under_load)
            / statistics.median(x / 1e3 for x in base_lat)
        ),
    }


def check_process_serialized_equals_direct(items: np.ndarray) -> None:
    """Bitwise preflight for the parallel scenario: serialized serving
    through worker *processes* replays the request sequence exactly as
    direct engine calls would — speed without this is meaningless."""
    engine = ShardedSamplerEngine(CONFIG, shards=SERVED_SHARDS, seed=7)
    with SamplerService(
        CONFIG, shards=SERVED_SHARDS, seed=7, serialized=True,
        workers_mode="process", ingest_workers=2, compact_interval=None,
    ) as svc:
        for chunk in np.array_split(items, 4):
            svc.submit(chunk)
            engine.ingest(chunk)
            a, b = svc.sample(), engine.sample()
            if a != b:
                raise AssertionError(f"process-served {a} != direct {b}")


def _parallel_run(
    mode: str, workers: int, work: np.ndarray, write_batch: int
) -> dict:
    """One parallel-ingest measurement: steady-state submit→flush wall
    time through ``workers`` shard owners in ``mode``.  Worker startup
    (thread spawn vs. process fork + replica boot) happens before the
    clock starts — the scenario measures serving throughput, not cold
    start."""
    batches = work.size // write_batch
    walls = []
    for __ in range(PARALLEL_REPS):
        with SamplerService(
            CONFIG, shards=SERVED_SHARDS, seed=7, ingest_workers=workers,
            workers_mode=mode, refresh_interval=1e9, compact_interval=None,
        ) as svc:
            warm = work[:write_batch]
            svc.submit(warm)
            svc.flush()
            t0 = time.perf_counter()
            for w in range(batches):
                svc.submit(work[w * write_batch:(w + 1) * write_batch])
            svc.flush()
            walls.append(time.perf_counter() - t0)
    wall = min(walls)  # best-of: gates compare capability, not jitter
    return {
        "mode": mode,
        "workers": workers,
        "items": int(batches * write_batch),
        "reps": PARALLEL_REPS,
        "wall_seconds": wall,
        "items_per_sec": batches * write_batch / wall,
    }


def bench_parallel_ingest(work: np.ndarray, write_batch: int) -> dict:
    """The PR 8 scaling scenario: identical write workloads through
    thread-mode and process-mode ingest planes at 1, 2, and 4 workers.

    Process mode exists to turn K shards into K cores; the report
    records the host's core count alongside the runs so the gates can
    arm only where the hardware can express the speedup (see
    ``evaluate_gates``)."""
    runs = [
        _parallel_run(mode, workers, work, write_batch)
        for mode in ("thread", "process")
        for workers in PARALLEL_WORKER_STEPS
    ]
    return {
        "shards": SERVED_SHARDS,
        "write_batch": write_batch,
        "cpu_count": os.cpu_count() or 1,
        "runs": runs,
    }


def _parallel_rate(report: dict, mode: str, workers: int) -> float:
    for row in report["parallel_ingest"]["runs"]:
        if row["mode"] == mode and row["workers"] == workers:
            return row["items_per_sec"]
    raise KeyError(f"missing parallel_ingest run ({mode}, {workers})")


def _parallel_gates(report: dict, failures: list[str]) -> list[str]:
    """Hardware-adaptive gates for the parallel-ingest scenario; returns
    the list of gates skipped for lack of cores (recorded in the
    report, so a pass on a small box is visibly weaker)."""
    par = report["parallel_ingest"]
    cores = par["cpu_count"]
    skipped = []
    for row in par["runs"]:
        if row["items_per_sec"] < MIN_PARALLEL_INGEST_FLOOR:
            failures.append(
                f"parallel ingest {row['mode']}@{row['workers']}w "
                f"{row['items_per_sec'] / 1e3:.0f}k items/s is below the "
                f"{MIN_PARALLEL_INGEST_FLOOR / 1e3:.0f}k floor"
            )
    for mode in ("thread", "process"):
        for lo, hi in zip(PARALLEL_WORKER_STEPS, PARALLEL_WORKER_STEPS[1:]):
            tol = (
                PARALLEL_TOL_IN_CORES
                if hi <= cores
                else PARALLEL_TOL_OVERSUBSCRIBED
            )
            r_lo, r_hi = (
                _parallel_rate(report, mode, lo),
                _parallel_rate(report, mode, hi),
            )
            if r_hi < tol * r_lo:
                failures.append(
                    f"parallel ingest {mode} mode fell off going "
                    f"{lo}→{hi} workers: {r_hi / 1e3:.0f}k < {tol:.2f}x "
                    f"{r_lo / 1e3:.0f}k items/s (host has {cores} core(s))"
                )
    if cores >= 4:
        ratio = _parallel_rate(report, "process", 4) / _parallel_rate(
            report, "thread", 4
        )
        if ratio < MIN_PROCESS_VS_THREAD_AT_4:
            failures.append(
                f"process-mode ingest at 4 workers is only {ratio:.2f}x "
                f"thread mode (< {MIN_PROCESS_VS_THREAD_AT_4}x on a "
                f"{cores}-core host)"
            )
    else:
        skipped.append(
            f"process>= {MIN_PROCESS_VS_THREAD_AT_4}x thread at 4 workers "
            f"(requires >= 4 cores; host has {cores})"
        )
    if cores >= 2:
        top = min(4, cores)
        for mode in ("thread", "process"):
            r1, r_top = (
                _parallel_rate(report, mode, 1),
                _parallel_rate(report, mode, top),
            )
            if r_top < r1:
                failures.append(
                    f"served ingest does not increase with worker count: "
                    f"{mode}@{top}w {r_top / 1e3:.0f}k < @1w "
                    f"{r1 / 1e3:.0f}k items/s on a {cores}-core host"
                )
    else:
        skipped.append(
            "served-ingest-increases-with-workers (requires >= 2 cores; "
            f"host has {cores})"
        )
    return skipped


def _obs_run(
    preload: np.ndarray,
    work: np.ndarray,
    write_batch: int,
    queries: int,
    enabled: bool,
) -> tuple[float, float]:
    """One rep of the served workload with metrics on/off; returns
    (ingest items/sec, query p50 µs on the warm published fold)."""
    batches = work.size // write_batch
    with SamplerService(
        CONFIG,
        shards=SERVED_SHARDS,
        seed=7,
        ingest_workers=SERVED_WORKERS,
        refresh_interval=0.02,
        metrics=enabled,
    ) as svc:
        svc.submit(preload)
        svc.flush()
        svc.refresh()
        t0 = time.perf_counter()
        for w in range(batches):
            svc.submit(work[w * write_batch:(w + 1) * write_batch])
        svc.flush()
        wall = time.perf_counter() - t0
        svc.refresh()
        for __ in range(16):  # untimed query warmup (reader view spawn)
            svc.sample()
        latencies: list[int] = []
        for __ in range(queries):
            q0 = time.perf_counter_ns()
            svc.sample()
            latencies.append(time.perf_counter_ns() - q0)
    return work.size / wall, statistics.median(ns / 1e3 for ns in latencies)


def bench_obs_overhead(
    preload: np.ndarray, work: np.ndarray, write_batch: int, queries: int
) -> dict:
    """Metrics-on vs. metrics-off served workload, best of OBS_REPS
    reps per mode (max throughput, min p50) so scheduler noise does not
    masquerade as instrumentation overhead.  Modes alternate within
    each rep, so drift penalizes neither systematically."""
    best = {
        True: {"items_per_sec": 0.0, "p50_us": float("inf")},
        False: {"items_per_sec": 0.0, "p50_us": float("inf")},
    }
    for __ in range(OBS_REPS):
        for enabled in (False, True):
            tput, p50 = _obs_run(preload, work, write_batch, queries, enabled)
            best[enabled]["items_per_sec"] = max(
                best[enabled]["items_per_sec"], tput
            )
            best[enabled]["p50_us"] = min(best[enabled]["p50_us"], p50)
    return {
        "reps": OBS_REPS,
        "queries": queries,
        "items": int(work.size),
        "enabled": best[True],
        "disabled": best[False],
        "throughput_ratio": (
            best[True]["items_per_sec"] / best[False]["items_per_sec"]
        ),
        "p50_ratio": best[True]["p50_us"] / best[False]["p50_us"],
    }


def _audit_run(
    preload: np.ndarray,
    work: np.ndarray,
    write_batch: int,
    queries: int,
    audited: bool,
) -> tuple[float, float, int]:
    """One rep of the served workload with the audit plane on/off
    (metrics enabled in both — the audit cost is measured on top of the
    PR 6 instrumentation, not bundled with it); returns (ingest
    items/sec, query p50 µs on the warm published fold)."""
    batches = work.size // write_batch
    with SamplerService(
        CONFIG,
        shards=SERVED_SHARDS,
        seed=7,
        ingest_workers=SERVED_WORKERS,
        refresh_interval=0.02,
        metrics=True,
        audit={"interval": 0.05, "draws": 256} if audited else None,
    ) as svc:
        svc.submit(preload)
        svc.flush()
        svc.refresh()
        t0 = time.perf_counter()
        for w in range(batches):
            svc.submit(work[w * write_batch:(w + 1) * write_batch])
        svc.flush()
        wall = time.perf_counter() - t0
        svc.refresh()
        for __ in range(16):  # untimed query warmup (reader view spawn)
            svc.sample()
        latencies: list[int] = []
        for __ in range(queries):
            q0 = time.perf_counter_ns()
            svc.sample()
            latencies.append(time.perf_counter_ns() - q0)
        ticks = (
            svc.audit_status().get("ticks", 0) if audited else 0
        )
    return work.size / wall, statistics.median(ns / 1e3 for ns in latencies), ticks


def bench_audit_overhead(
    preload: np.ndarray, work: np.ndarray, write_batch: int, queries: int
) -> dict:
    """Audit-on vs. audit-off served workload, best of OBS_REPS reps per
    mode (max throughput, min p50), modes alternating within each rep —
    the same noise discipline as :func:`bench_obs_overhead`."""
    best = {
        True: {"items_per_sec": 0.0, "p50_us": float("inf")},
        False: {"items_per_sec": 0.0, "p50_us": float("inf")},
    }
    audit_ticks = 0
    for __ in range(OBS_REPS):
        for audited in (False, True):
            tput, p50, ticks = _audit_run(
                preload, work, write_batch, queries, audited
            )
            best[audited]["items_per_sec"] = max(
                best[audited]["items_per_sec"], tput
            )
            best[audited]["p50_us"] = min(best[audited]["p50_us"], p50)
            audit_ticks = max(audit_ticks, ticks)
    return {
        "reps": OBS_REPS,
        "queries": queries,
        "items": int(work.size),
        "audit_ticks": int(audit_ticks),
        "enabled": best[True],
        "disabled": best[False],
        "throughput_ratio": (
            best[True]["items_per_sec"] / best[False]["items_per_sec"]
        ),
        "p50_ratio": best[True]["p50_us"] / best[False]["p50_us"],
    }


def _telemetry_run(
    preload: np.ndarray, work: np.ndarray, write_batch: int, telemetry: bool
) -> float:
    """One rep of the process-mode served ingest with the worker
    telemetry plane on/off (metrics enabled in both — the telemetry
    cost is measured on top of the parent-side instrumentation);
    returns ingest items/sec."""
    batches = work.size // write_batch
    with SamplerService(
        CONFIG,
        shards=SERVED_SHARDS,
        seed=7,
        ingest_workers=SERVED_WORKERS,
        workers_mode="process",
        metrics=True,
        worker_telemetry=telemetry,
    ) as svc:
        svc.submit(preload)
        svc.flush()
        svc.refresh()
        t0 = time.perf_counter()
        for w in range(batches):
            svc.submit(work[w * write_batch:(w + 1) * write_batch])
        svc.flush()
        wall = time.perf_counter() - t0
        svc.refresh()
    return work.size / wall


def bench_telemetry_overhead(
    preload: np.ndarray, work: np.ndarray, write_batch: int
) -> dict:
    """Telemetry-on vs. telemetry-off process-mode ingest, best of
    OBS_REPS reps per mode, modes alternating within each rep — the
    same noise discipline as :func:`bench_obs_overhead`."""
    best = {True: 0.0, False: 0.0}
    for __ in range(OBS_REPS):
        for telemetry in (False, True):
            tput = _telemetry_run(preload, work, write_batch, telemetry)
            best[telemetry] = max(best[telemetry], tput)
    return {
        "reps": OBS_REPS,
        "items": int(work.size),
        "workers": SERVED_WORKERS,
        "enabled": {"items_per_sec": best[True]},
        "disabled": {"items_per_sec": best[False]},
        "throughput_ratio": best[True] / best[False],
    }


def evaluate_gates(report: dict) -> list[str]:
    failures = []
    for row in report["query_latency"]:
        if row["cached"]["p50_us"] > MAX_CACHED_REGRESSION * row["fresh"]["p50_us"]:
            failures.append(
                f"cached p50 {row['cached']['p50_us']:.1f}us exceeds "
                f"{MAX_CACHED_REGRESSION}x fresh baseline "
                f"{row['fresh']['p50_us']:.1f}us at K={row['shards']} "
                f"{row['ratio']}"
            )
    headline = next(
        (
            r
            for r in report["query_latency"]
            if r["shards"] == 8 and r["ratio"] == "100:1"
        ),
        None,
    )
    if headline is None:
        failures.append("missing the (100:1, K=8) headline workload")
    elif headline["speedup_p50"] < MIN_READ_HEAVY_SPEEDUP:
        failures.append(
            f"read-heavy (100:1, K=8) cached p50 speedup "
            f"{headline['speedup_p50']:.1f}x < {MIN_READ_HEAVY_SPEEDUP}x"
        )
    if report["sample_many"]["speedup"] < MIN_SAMPLE_MANY_SPEEDUP:
        failures.append(
            f"sample_many({report['sample_many']['k']}) speedup "
            f"{report['sample_many']['speedup']:.1f}x < "
            f"{MIN_SAMPLE_MANY_SPEEDUP}x"
        )
    served = report["served_scenario"]
    if served["p50_ratio"] > MAX_SERVED_P50_RATIO:
        failures.append(
            f"served query p50 {served['served']['p50_us']:.1f}us is "
            f"{served['p50_ratio']:.2f}x the single-threaded cached-fold "
            f"p50 {served['baseline']['p50_us']:.1f}us "
            f"(> {MAX_SERVED_P50_RATIO}x)"
        )
    if served["ingest_speedup"] < MIN_SERVED_INGEST_SPEEDUP:
        failures.append(
            f"served ingest throughput "
            f"{served['served']['items_per_sec'] / 1e3:.0f}k items/s is only "
            f"{served['ingest_speedup']:.2f}x the single-threaded batched "
            f"path (< {MIN_SERVED_INGEST_SPEEDUP}x)"
        )
    if served["served"]["queries_total"] < served["baseline"]["queries"]:
        failures.append(
            f"served path answered {served['served']['queries_total']} "
            f"queries < baseline's {served['baseline']['queries']} — the "
            "throughput comparison would be unfair"
        )
    obs = report["obs_overhead"]
    if obs["throughput_ratio"] < MIN_OBS_THROUGHPUT_RATIO:
        failures.append(
            f"metrics-enabled served ingest throughput is only "
            f"{obs['throughput_ratio']:.3f}x the metrics-disabled run "
            f"(< {MIN_OBS_THROUGHPUT_RATIO}x)"
        )
    if obs["p50_ratio"] > MAX_OBS_P50_RATIO:
        failures.append(
            f"metrics-enabled query p50 {obs['enabled']['p50_us']:.1f}us is "
            f"{obs['p50_ratio']:.3f}x the metrics-disabled "
            f"{obs['disabled']['p50_us']:.1f}us (> {MAX_OBS_P50_RATIO}x)"
        )
    kernel = report["ingest_kernel"]
    rate_k1 = next(
        r["items_per_sec"] for r in kernel["runs"] if r["shards"] == 1
    )
    if rate_k1 < MIN_INGEST_KERNEL_K1_FLOOR:
        failures.append(
            f"ingest-kernel K=1 rate {rate_k1 / 1e6:.2f}M items/s is below "
            f"the {MIN_INGEST_KERNEL_K1_FLOOR / 1e6:.1f}M floor"
        )
    if kernel["k8_over_k1"] < MIN_INGEST_KERNEL_K8_RATIO:
        failures.append(
            f"ingest-kernel K=8 rate is only {kernel['k8_over_k1']:.3f}x "
            f"the K=1 rate (< {MIN_INGEST_KERNEL_K8_RATIO}x at chunk size "
            f"{kernel['chunk_size']})"
        )
    report["parallel_ingest"]["skipped_gates"] = _parallel_gates(
        report, failures
    )
    audit = report["audit_overhead"]
    if audit["throughput_ratio"] < MIN_AUDIT_THROUGHPUT_RATIO:
        failures.append(
            f"audit-enabled served ingest throughput is only "
            f"{audit['throughput_ratio']:.3f}x the audit-off run "
            f"(< {MIN_AUDIT_THROUGHPUT_RATIO}x)"
        )
    if audit["p50_ratio"] > MAX_AUDIT_P50_RATIO:
        failures.append(
            f"audit-enabled query p50 {audit['enabled']['p50_us']:.1f}us is "
            f"{audit['p50_ratio']:.3f}x the audit-off "
            f"{audit['disabled']['p50_us']:.1f}us (> {MAX_AUDIT_P50_RATIO}x)"
        )
    telemetry = report["telemetry_overhead"]
    if telemetry["throughput_ratio"] < MIN_TELEMETRY_THROUGHPUT_RATIO:
        failures.append(
            f"telemetry-enabled process-mode ingest throughput is only "
            f"{telemetry['throughput_ratio']:.3f}x the telemetry-off run "
            f"(< {MIN_TELEMETRY_THROUGHPUT_RATIO}x)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced scale for CI (same gates)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_E23.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        m, queries, write_batch, k_many = 60_000, 120, 200, 1000
        served_batches, served_batch = 60, 1_000
        kernel_m = 500_000
    else:
        m, queries, write_batch, k_many = 400_000, 400, 500, 1000
        served_batches, served_batch = 150, 2_000
        kernel_m = 2_000_000
    stream = zipf_stream(
        1 << 14, m + served_batches * served_batch, alpha=1.2, seed=1
    )
    items = np.asarray(stream.items)[:m]
    served_work = np.asarray(stream.items)[m:]
    kernel_items = np.asarray(
        zipf_stream(1 << 14, kernel_m, alpha=1.2, seed=2).items
    )

    print(f"perf_suite: m={m} queries/workload={queries} smoke={args.smoke}")
    check_cached_equals_fresh(items[:20_000])
    print("bitwise gate: cached == fresh ✓")
    check_serialized_equals_direct(items[:20_000])
    print("bitwise gate: serialized serving == direct engine ✓")
    check_process_serialized_equals_direct(items[:20_000])
    print("bitwise gate: process-mode serving == direct engine ✓")
    check_ingest_kernel_bitwise(kernel_items[:20_000])
    print("bitwise gate: shared-index kernel == reference == scalar-chunked ✓")

    report = {
        "bench": "E23-query-fast-path",
        "smoke": args.smoke,
        "config": CONFIG,
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "ingest": bench_ingest(items, chunk=1 << 16),
        "ingest_kernel": bench_ingest_kernel(kernel_items),
        "query_latency": bench_queries(items, queries, write_batch),
        "sample_many": bench_sample_many(items, k_many),
        "served_scenario": bench_served(items, served_work, served_batch),
        "parallel_ingest": bench_parallel_ingest(served_work, served_batch),
        "obs_overhead": bench_obs_overhead(
            items, served_work, served_batch, queries
        ),
        "audit_overhead": bench_audit_overhead(
            items, served_work, served_batch, queries
        ),
        "telemetry_overhead": bench_telemetry_overhead(
            items, served_work, served_batch
        ),
    }
    failures = evaluate_gates(report)
    report["gates"] = {
        "max_cached_p50_regression": MAX_CACHED_REGRESSION,
        "min_read_heavy_speedup": MIN_READ_HEAVY_SPEEDUP,
        "min_sample_many_speedup": MIN_SAMPLE_MANY_SPEEDUP,
        "max_served_p50_ratio": MAX_SERVED_P50_RATIO,
        "min_served_ingest_speedup": MIN_SERVED_INGEST_SPEEDUP,
        "min_process_vs_thread_at_4": MIN_PROCESS_VS_THREAD_AT_4,
        "parallel_tol_in_cores": PARALLEL_TOL_IN_CORES,
        "parallel_tol_oversubscribed": PARALLEL_TOL_OVERSUBSCRIBED,
        "min_parallel_ingest_floor": MIN_PARALLEL_INGEST_FLOOR,
        "min_ingest_kernel_k8_ratio": MIN_INGEST_KERNEL_K8_RATIO,
        "min_ingest_kernel_k1_floor": MIN_INGEST_KERNEL_K1_FLOOR,
        "min_obs_throughput_ratio": MIN_OBS_THROUGHPUT_RATIO,
        "max_obs_p50_ratio": MAX_OBS_P50_RATIO,
        "min_audit_throughput_ratio": MIN_AUDIT_THROUGHPUT_RATIO,
        "max_audit_p50_ratio": MAX_AUDIT_P50_RATIO,
        "min_telemetry_throughput_ratio": MIN_TELEMETRY_THROUGHPUT_RATIO,
        "failures": failures,
        "passed": not failures,
    }

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    for row in report["ingest"]:
        print(
            f"  ingest  K={row['shards']:<3} "
            f"{row['items_per_sec'] / 1e6:6.2f}M items/s"
        )
    ik = report["ingest_kernel"]
    for row in ik["runs"]:
        print(
            f"  kernel  K={row['shards']:<3} "
            f"{row['items_per_sec'] / 1e6:6.2f}M items/s "
            f"(chunk {row['chunk_size']}, best of {row['reps']})"
        )
    print(
        f"  kernel  K8/K1 {ik['k8_over_k1']:.3f}x  "
        f"K32/K1 {ik['k32_over_k1']:.3f}x"
    )
    for row in report["query_latency"]:
        print(
            f"  query   K={row['shards']:<3} {row['ratio']:>6}  "
            f"cached p50 {row['cached']['p50_us']:8.1f}us  "
            f"p99 {row['cached']['p99_us']:8.1f}us | "
            f"fresh p50 {row['fresh']['p50_us']:8.1f}us  "
            f"speedup {row['speedup_p50']:6.1f}x"
        )
    sm = report["sample_many"]
    print(
        f"  sample_many({sm['k']}) {sm['sample_many_seconds'] * 1e3:.1f}ms vs "
        f"loop {sm['loop_seconds'] * 1e3:.1f}ms → {sm['speedup']:.1f}x"
    )
    sv = report["served_scenario"]
    print(
        f"  served  K={sv['shards']} {sv['workers']}w/{sv['clients']}c  "
        f"ingest {sv['served']['items_per_sec'] / 1e3:6.0f}k items/s "
        f"({sv['ingest_speedup']:.1f}x single-thread) | "
        f"q p50 {sv['served']['p50_us']:6.1f}us p99 "
        f"{sv['served']['p99_us']:7.1f}us "
        f"({sv['p50_ratio']:.2f}x baseline p50 "
        f"{sv['baseline']['p50_us']:.1f}us; "
        f"{sv['served']['queries']} under-load + "
        f"{sv['served']['quiescent_tail_queries']} tail vs "
        f"{sv['baseline']['queries']} baseline queries)"
    )
    par = report["parallel_ingest"]
    for row in par["runs"]:
        print(
            f"  scaling {row['mode']:>7}@{row['workers']}w  "
            f"{row['items_per_sec'] / 1e3:6.0f}k items/s"
        )
    for reason in par["skipped_gates"]:
        print(f"  scaling gate skipped: {reason}")
    ob = report["obs_overhead"]
    print(
        f"  obs     metrics on/off: ingest "
        f"{ob['enabled']['items_per_sec'] / 1e3:6.0f}k / "
        f"{ob['disabled']['items_per_sec'] / 1e3:6.0f}k items/s "
        f"({ob['throughput_ratio']:.3f}x) | q p50 "
        f"{ob['enabled']['p50_us']:.1f} / {ob['disabled']['p50_us']:.1f}us "
        f"({ob['p50_ratio']:.3f}x, best of {ob['reps']})"
    )
    au = report["audit_overhead"]
    print(
        f"  audit   on/off: ingest "
        f"{au['enabled']['items_per_sec'] / 1e3:6.0f}k / "
        f"{au['disabled']['items_per_sec'] / 1e3:6.0f}k items/s "
        f"({au['throughput_ratio']:.3f}x) | q p50 "
        f"{au['enabled']['p50_us']:.1f} / {au['disabled']['p50_us']:.1f}us "
        f"({au['p50_ratio']:.3f}x, {au['audit_ticks']} ticks, "
        f"best of {au['reps']})"
    )
    tl = report["telemetry_overhead"]
    print(
        f"  telem   on/off: process ingest "
        f"{tl['enabled']['items_per_sec'] / 1e3:6.0f}k / "
        f"{tl['disabled']['items_per_sec'] / 1e3:6.0f}k items/s "
        f"({tl['throughput_ratio']:.3f}x, {tl['workers']}w, "
        f"best of {tl['reps']})"
    )
    if failures:
        print("GATE FAILURES:")
        for failure in failures:
            print(f"  ✗ {failure}")
        return 1
    print("all gates passed ✓")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
