"""E15 — O(1) update time (Theorem 3.1) vs the perfect-sampler baseline.

Claims: (a) the truly perfect sampler's per-update cost is flat in the
universe size and in the error target (there is no error knob at all);
(b) the precision-sampling baseline's per-update cost grows linearly with
its duplication factor — the paper's n^{O(c)} update time for additive
error n^{-c}; (c) pool heap events stay ≈ R·H_m (amortized O(1)).
"""

import time

import numpy as np

from conftest import loglog_slope, write_table
from repro.core import LpMeasure, TrulyPerfectGSampler, TrulyPerfectLpSampler
from repro.perfect import PrecisionSamplingLpSampler
from repro.streams import zipf_stream


def _per_update_cost(make_sampler, stream_items, repeats: int = 3) -> float:
    best = float("inf")
    for __ in range(repeats):
        s = make_sampler()
        t0 = time.perf_counter()
        for item in stream_items:
            s.update(item)
        best = min(best, (time.perf_counter() - t0) / len(stream_items))
    return best


def _run_experiment():
    lines = []
    m = 4000
    # Ours: cost vs universe size.
    ours = []
    for n in (64, 1024, 16384):
        items = list(zipf_stream(n=n, m=m, alpha=1.1, seed=n))
        cost = _per_update_cost(
            lambda n=n: TrulyPerfectLpSampler(p=2.0, n=n, instances=64, seed=0),
            items,
        )
        ours.append(cost)
        lines.append(f"truly-perfect Lp: n={n:<7d} cost/update={cost*1e6:8.2f} us")
    # Baseline: cost vs duplication (the error knob).
    items = list(zipf_stream(n=256, m=1000, alpha=1.1, seed=5))
    base = []
    for dup in (1, 4, 16):
        cost = _per_update_cost(
            lambda dup=dup: PrecisionSamplingLpSampler(
                2.0, 256, duplication=dup, width=64, depth=3, seed=0
            ),
            items,
        )
        base.append(cost)
        lines.append(
            f"precision baseline: duplication={dup:<4d} "
            f"cost/update={cost*1e6:8.2f} us"
        )
    flatness = max(ours) / min(ours)
    growth = base[-1] / base[0]
    lines.append(
        f"ours max/min across 256x universe growth: {flatness:.2f}x; "
        f"baseline growth across 16x duplication: {growth:.2f}x"
    )
    return lines, flatness, growth


def test_e15_update_time(benchmark):
    lines, flatness, growth = benchmark.pedantic(_run_experiment, rounds=1,
                                                 iterations=1)
    write_table("E15", "Update time: O(1) truly perfect vs baseline", lines)
    benchmark.extra_info["ours_flatness"] = flatness
    benchmark.extra_info["baseline_growth"] = growth
    assert flatness < 3.0, "truly perfect update cost should be ~flat in n"
    assert growth > 4.0, "baseline cost must grow with its error knob"


def test_e15_heap_events_amortized(benchmark):
    """Total replacements ≈ R·H_m ⇒ per-update work is O(1) amortized."""

    def run():
        out = {}
        for m in (1000, 8000):
            s = TrulyPerfectGSampler(LpMeasure(1.0), instances=64, seed=0)
            s.extend(zipf_stream(n=64, m=m, alpha=1.0, seed=m))
            out[m] = s._pool.heap_events / m
        return out

    per_update = benchmark.pedantic(run, rounds=1, iterations=1)
    # Longer streams amortize better: events per update must shrink.
    assert per_update[8000] < per_update[1000]
