"""Shared benchmark utilities.

Every ``bench_eXX`` module regenerates one experiment from DESIGN.md's
index: it measures the claim, prints the table, writes it to
``benchmarks/results/<id>.txt`` (the source for EXPERIMENTS.md), and
asserts the claim's *shape* loosely so regressions fail loudly.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_table(experiment_id: str, title: str, lines: list[str]) -> str:
    """Print and persist an experiment table; returns the rendered text."""
    RESULTS_DIR.mkdir(exist_ok=True)
    header = f"== {experiment_id}: {title} =="
    text = "\n".join([header, *lines]) + "\n"
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text)
    print("\n" + text)
    return text


def loglog_slope(xs: list[float], ys: list[float]) -> float:
    """Least-squares slope of log(y) vs log(x) — the scaling-law check."""
    import numpy as np

    lx = np.log(np.asarray(xs, dtype=float))
    ly = np.log(np.asarray(ys, dtype=float))
    lx = lx - lx.mean()
    return float((lx * (ly - ly.mean())).sum() / (lx * lx).sum())
