"""A3 — application benchmark: unbiased F_G estimation from the pool.

The telescoping identity behind Framework 1.3 doubles as an estimator
(``repro.apps.FGEstimator``): one reservoir pool gives simultaneously
unbiased estimates of ``F_G`` for every measure.  Sweep the unit count
and verify the ``1/√units`` error decay and the cross-measure sharing.
"""

import numpy as np

from conftest import loglog_slope, write_table
from repro.apps import FGEstimator
from repro.core import HuberMeasure, LpMeasure
from repro.sketches.lp_norm import exact_fp
from repro.streams import zipf_stream

STREAM = zipf_stream(n=64, m=2500, alpha=1.2, seed=3)
TRUTH_F2 = exact_fp(STREAM.frequencies(), 2.0)


def _rel_rmse(units: int, reps: int = 30) -> float:
    errs = []
    for seed in range(reps):
        est = FGEstimator(units=units, seed=seed)
        est.extend(STREAM)
        errs.append((est.estimate(LpMeasure(2.0)) - TRUTH_F2) / TRUTH_F2)
    return float(np.sqrt(np.mean(np.square(errs))))


def _run_experiment():
    lines = []
    units_list = [16, 64, 256]
    rmses = []
    for units in units_list:
        rmse = _rel_rmse(units)
        rmses.append(rmse)
        lines.append(f"units={units:<5d} relative RMSE of F2 estimate={rmse:.4f}")
    slope = loglog_slope([float(u) for u in units_list], rmses)
    lines.append(f"log-log slope {slope:.3f} (theory -0.5)")
    # Simultaneity: F1 is exact from any pool (all increments are 1).
    est = FGEstimator(units=16, seed=99)
    est.extend(STREAM)
    many = est.estimate_many([LpMeasure(1.0), HuberMeasure(1.0)])
    lines.append(
        f"same 16-unit pool: F1 estimate={many['L1']:.0f} "
        f"(exact {len(STREAM)}), Huber estimate={many['Huber(τ=1)']:.0f}"
    )
    return lines, slope, many


def test_a03_fg_estimation(benchmark):
    lines, slope, many = benchmark.pedantic(_run_experiment, rounds=1,
                                            iterations=1)
    write_table("A03", "F_G estimation from reservoir state", lines)
    assert -0.85 < slope < -0.2  # 1/sqrt(units) decay, wide tolerance
    assert many["L1"] == len(STREAM)  # exact for F1
