"""E18 — Theorem D.3: one-pass truly perfect F0 sampling on strict
turnstile streams via deterministic sparse recovery.

Claims: (a) uniform over the *final* support even under heavy deletions;
(b) the sparse regime (support ≤ 2√n) succeeds deterministically through
recovery; (c) the dense regime falls back to the random subset with
bounded FAIL; (d) recovery space is O(√n) field elements.
"""

from conftest import write_table
from repro.core import StrictTurnstileF0Sampler
from repro.stats import evaluate, f0_target
from repro.streams import TurnstileStream, strict_turnstile_stream


def _run_experiment():
    lines = []
    ok = True
    # Sparse regime: heavy churn, small final support.
    ups = []
    for i in range(30):
        ups.append((i, 2))
    for i in range(24):  # delete most of them
        ups.append((i, -2))
    ts_sparse = TurnstileStream(ups, n=900)
    target = f0_target(ts_sparse.frequencies())

    def run_sparse(seed):
        s = StrictTurnstileF0Sampler(900, delta=0.05, seed=seed)
        s.extend(ts_sparse)
        return s.sample()

    rep = evaluate(run_sparse, target, trials=1000)
    ok &= rep.chi2_pvalue > 1e-4 and rep.fail_rate == 0.0
    lines.append(rep.row("sparse regime (6 alive of 900)"))

    # Dense regime: random churn stream with a large surviving support.
    ts_dense = strict_turnstile_stream(49, 500, delete_fraction=0.3, seed=18)
    target_d = f0_target(ts_dense.frequencies())

    def run_dense(seed):
        s = StrictTurnstileF0Sampler(49, delta=0.05, seed=seed)
        s.extend(ts_dense)
        return s.sample()

    rep_d = evaluate(run_dense, target_d, trials=1000)
    ok &= rep_d.chi2_pvalue > 1e-4 and rep_d.fail_rate <= 0.1
    lines.append(rep_d.row("dense regime (random churn)"))
    return lines, ok


def test_e18_strict_turnstile_f0(benchmark):
    lines, ok = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_table("E18", "Strict turnstile F0 sampling (Thm D.3)", lines)
    assert ok


def test_e18_sparsity_budget_scales(benchmark):
    def budgets():
        return [StrictTurnstileF0Sampler(n, seed=0).sparsity_budget
                for n in (100, 10_000)]

    small, large = benchmark(budgets)
    assert 8 <= large / small <= 12  # 2√n scaling


def test_e18_update_throughput(benchmark):
    ts = strict_turnstile_stream(49, 300, delete_fraction=0.3, seed=19)

    def replay():
        s = StrictTurnstileF0Sampler(49, seed=0)
        s.extend(ts)
        return s

    benchmark(replay)
