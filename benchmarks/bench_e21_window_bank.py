"""E21 — WindowBank: batched windowed ingest throughput + sharded
windowed exactness.

Claims: (a) the bank's shared-boundary batched ingest runs a
multi-resolution ladder {1m, 5m, 1h} at ≥ 3× the scalar per-update
loop's throughput while staying *bitwise identical* to it (per-bucket
RNG streams mean batching reorders no randomness); (b) time-windowed
serving shards exactly — K = 8 hash-partitioned window_bank shards,
merged, pass the distribution test against the true time-window L2 law.

Scale knobs (for CI smoke runs): ``WINDOW_BENCH_M`` (stream length,
default 3·10^5; the ≥3× assertion relaxes to ≥1.5× below full scale)
and ``WINDOW_BENCH_TRIALS`` (distribution-check trials, default 200).
"""

import os
import time

import numpy as np

from conftest import write_table
from repro.engine import ShardedSamplerEngine
from repro.engine.state import state_to_bytes
from repro.stats import assert_matches_distribution, lp_target
from repro.streams import with_arrivals, zipf_stream
from repro.windows import WindowBank

M = int(os.environ.get("WINDOW_BENCH_M", 3 * 10**5))
TRIALS = int(os.environ.get("WINDOW_BENCH_TRIALS", 200))
N = 10**4
LADDER = (60.0, 300.0, 3600.0)  # 1m / 5m / 1h
RATE = 1000.0  # arrivals per second
CHUNK = 1 << 16


def _throughput_experiment():
    feed = with_arrivals(
        zipf_stream(n=N, m=M, alpha=1.2, seed=0),
        process="poisson",
        rate=RATE,
        seed=1,
    )
    lines = [
        f"ladder={tuple(int(h) for h in LADDER)}s  rate={RATE:.0f}/s  "
        f"span={feed.duration:.0f}s"
    ]
    rates = {}

    t0 = time.perf_counter()
    scalar_bank = WindowBank(LADDER, p=2.0, n=N, instances=32, seed=2)
    for item, when in feed:
        scalar_bank.update(item, when)
    rates["scalar"] = M / (time.perf_counter() - t0)

    t0 = time.perf_counter()
    batched_bank = WindowBank(LADDER, p=2.0, n=N, instances=32, seed=2)
    for start in range(0, M, CHUNK):
        batched_bank.update_batch(
            feed.items[start:start + CHUNK], feed.timestamps[start:start + CHUNK]
        )
    rates["batched"] = M / (time.perf_counter() - t0)

    for mode, rate in rates.items():
        lines.append(
            f"{mode:<8s} m={M:<8d} throughput={rate / 1e6:8.2f}M updates/s"
        )
    speedup = rates["batched"] / rates["scalar"]
    lines.append(f"batched/scalar speedup: {speedup:.1f}x")
    identical = state_to_bytes(scalar_bank.snapshot()) == state_to_bytes(
        batched_bank.snapshot()
    )
    lines.append(f"batched state bitwise-identical to scalar: {identical}")
    return lines, speedup, identical


def test_e21_window_bank_throughput(benchmark):
    lines, speedup, identical = benchmark.pedantic(
        _throughput_experiment, rounds=1, iterations=1
    )
    benchmark.extra_info["speedup"] = speedup
    required = 3.0 if M >= 3 * 10**5 else 1.5
    assert identical, "batched bank ingest must reproduce the scalar state exactly"
    assert speedup >= required, (
        f"batched bank ingest only {speedup:.1f}x scalar "
        f"(need ≥ {required}x at m={M})"
    )
    write_table(
        "E21", "WindowBank: scalar vs batched multi-resolution ingest", lines
    )


def test_e21_sharded_window_exactness(benchmark):
    """K=8 window_bank shards, merged, vs the true time-window L2 law."""
    feed = with_arrivals(
        zipf_stream(n=16, m=3000, alpha=1.1, seed=11),
        process="bursty",
        rate=40.0,
        burst_rate=300.0,
        seed=12,
    )
    horizon = 10.0
    target = lp_target(feed.window_frequencies(horizon), 2.0)

    def run(seed):
        engine = ShardedSamplerEngine(
            {
                "kind": "window_bank",
                "resolutions": [horizon, 4 * horizon],
                "p": 2.0,
                "n": 16,
                "instances": 150,
                "f0_seed": 77,
            },
            shards=8,
            seed=seed,
        )
        engine.ingest(feed)
        return engine.sample(horizon=horizon)

    def check():
        return assert_matches_distribution(run, target, trials=TRIALS)

    report = benchmark.pedantic(check, rounds=1, iterations=1)
    write_table(
        "E21b",
        "Sharded windowed exactness (window_bank, K=8, p=2)",
        [report.row("sharded window L2 K=8")],
    )
