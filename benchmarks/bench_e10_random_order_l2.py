"""E10 — Theorem 1.6 / Algorithm 9: random-order L2 collision sampling.

Claims: output exactly ``f_i²/F2``; FAIL ≤ 1/3; O(log² n) space (buffer
stays within its cap); skew sweep — the sampler tracks the target across
flat and heavy-tailed frequency profiles.
"""

import numpy as np

from conftest import write_table
from repro.random_order import RandomOrderL2Sampler
from repro.stats import evaluate, lp_target
from repro.streams import stream_from_frequencies

PROFILES = {
    "flat": np.full(12, 6),
    "geometric": np.array([1, 1, 2, 2, 4, 4, 8, 8, 16, 16, 32, 32]),
    "one-heavy": np.array([40, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2]),
}


def _run_experiment():
    lines = []
    ok = True
    for name, freq in PROFILES.items():
        m = int(freq.sum())
        target = lp_target(freq, 2.0)

        def run(seed, _f=freq, _m=m):
            stream = stream_from_frequencies(_f, order="random",
                                             seed=123_000 + seed)
            return RandomOrderL2Sampler(len(_f), horizon=_m, seed=seed).run(stream)

        rep = evaluate(run, target, trials=4000)
        ok &= rep.chi2_pvalue > 1e-4 and rep.fail_rate <= 1 / 3 + 0.05
        lines.append(rep.row(f"profile={name} (m={m})"))
    return lines, ok


def test_e10_random_order_l2(benchmark):
    lines, ok = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_table("E10", "Random-order L2 sampler exactness (Thm 1.6)", lines)
    assert ok


def test_e10_buffer_within_cap(benchmark):
    def check():
        freq = PROFILES["one-heavy"]
        m = int(freq.sum())
        worst = 0
        for seed in range(50):
            stream = stream_from_frequencies(freq, order="random", seed=seed)
            s = RandomOrderL2Sampler(len(freq), horizon=m, seed=seed)
            s.extend(stream)
            worst = max(worst, s.buffer_size)
        return worst

    worst = benchmark.pedantic(check, rounds=1, iterations=1)
    cap = RandomOrderL2Sampler(12, horizon=62, seed=0).capacity
    assert worst <= 2 * cap
