"""E9 — Theorems 5.4/5.5: Tukey sampling via the F0-sampler route.

Claim: the acceptance-corrected F0 sampler realizes exactly
``G_Tukey(f_i)/F_G``, for several saturation thresholds τ, in both the
random-oracle and √n-space variants.
"""

from conftest import write_table
from repro.core import TukeyMeasure, TukeySampler
from repro.stats import evaluate, g_target
from repro.streams import zipf_stream

STREAM = zipf_stream(n=48, m=2500, alpha=1.1, seed=4)
FREQ = STREAM.frequencies()


def _run_experiment():
    lines = []
    ok = True
    for tau in (3.0, 5.0):
        target = g_target(FREQ, TukeyMeasure(tau))

        def run_oracle(seed, _t=tau):
            return TukeySampler(48, tau=_t, oracle=True, seed=seed).run(STREAM)

        rep = evaluate(run_oracle, target, trials=600)
        ok &= rep.chi2_pvalue > 1e-4 and rep.fail_rate <= 0.06
        lines.append(rep.row(f"oracle variant, tau={tau:g}"))

    # √n-space variant at one tau.
    target = g_target(FREQ, TukeyMeasure(5.0))

    def run_sqrt(seed):
        return TukeySampler(48, tau=5.0, oracle=False, seed=seed).run(STREAM)

    rep = evaluate(run_sqrt, target, trials=600)
    ok &= rep.chi2_pvalue > 1e-4
    lines.append(rep.row("sqrt-n variant, tau=5"))
    return lines, ok


def test_e09_tukey(benchmark):
    lines, ok = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_table("E09", "Tukey sampling via F0 acceptance (Thms 5.4/5.5)", lines)
    assert ok


def test_e09_repetitions_scale_with_saturation(benchmark):
    def compute():
        return [TukeySampler(48, tau=t, seed=0).repetitions for t in (2.0, 20.0)]

    small, large = benchmark(compute)
    assert large > 10 * small  # G(τ)/G(1) grows ~ τ²
