"""E11 — Theorem 1.7 / Algorithm 10: integer p > 2 random-order sampling
via p-wise block collisions with the Stirling correction.

Claims: output exactly ``f_i^p/F_p`` for p ∈ {3, 4}; block size follows
``m^{1−1/(p−1)}``; the binomial fast-path simulation is what makes the
p-tuple enumeration tractable.
"""

import numpy as np

from conftest import write_table
from repro.random_order import RandomOrderLpSampler
from repro.stats import evaluate, lp_target
from repro.streams import stream_from_frequencies

FREQ = np.array([8, 12, 20, 32, 48])  # enough blocks for concentration
M = int(FREQ.sum())


def _run_experiment():
    lines = []
    ok = True
    for p in (3, 4):
        target = lp_target(FREQ, float(p))

        def run(seed, _p=p):
            stream = stream_from_frequencies(FREQ, order="random",
                                             seed=321_000 + seed)
            return RandomOrderLpSampler(_p, horizon=M, seed=seed).run(stream)

        rep = evaluate(run, target, trials=4000)
        ok &= rep.chi2_pvalue > 1e-4
        bs = RandomOrderLpSampler(p, horizon=M, seed=0).block_size
        lines.append(rep.row(f"p={p} (block={bs})"))
    return lines, ok


def test_e11_random_order_lp(benchmark):
    lines, ok = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_table("E11", "Random-order Lp (p>2) exactness (Thm 1.7)", lines)
    assert ok


def test_e11_block_size_scaling(benchmark):
    def compute():
        return {
            (p, m): RandomOrderLpSampler(p, horizon=m, seed=0).block_size
            for p in (3, 4)
            for m in (100, 10_000)
        }

    sizes = benchmark(compute)
    # B = m^{1-1/(p-1)}: p=3 → m^{1/2}; p=4 → m^{2/3}.
    assert sizes[(3, 10_000)] / sizes[(3, 100)] == 10
    assert 18 <= sizes[(4, 10_000)] / sizes[(4, 100)] <= 25


def test_e11_update_throughput(benchmark):
    stream = stream_from_frequencies(np.full(20, 100), order="random", seed=0)

    def replay():
        s = RandomOrderLpSampler(3, horizon=2000, seed=0)
        s.extend(stream)
        return s

    benchmark(replay)


def test_e11_reservoir_space_constant(benchmark):
    """Ablation: the reservoir pick holds O(1) state however many
    insertion events the blocks generate (the paper's capped buffer
    grows to its cap and re-thins)."""

    def run():
        s = RandomOrderLpSampler(4, horizon=4000, seed=0)
        s.extend([0] * 4000)
        return s.insertions_seen

    insertions = benchmark.pedantic(run, rounds=1, iterations=1)
    assert insertions > 10_000  # a flood of events, one word of state
