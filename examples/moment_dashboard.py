"""A streaming "moments dashboard" from one reservoir pool.

The telescoping identity behind the samplers doubles as an estimator:
``m·E[G(c) − G(c−1)] = F_G`` exactly.  One pool of reservoir instances
therefore yields *simultaneously unbiased* estimates of F2, Huber mass,
L1−L2 mass, ... — plus heavy hitters and duplicate detection from the
sampling side.  This example runs the whole application layer
(`repro.apps`) over a retail-like transaction stream.

Run:  python examples/moment_dashboard.py
"""

import numpy as np

from repro.apps import FGEstimator, find_duplicate, find_heavy_hitters
from repro.core import HuberMeasure, L1L2Measure, LpMeasure
from repro.sketches.lp_norm import exact_fp
from repro.streams import zipf_stream

N_PRODUCTS = 512
M = 30_000


def main() -> None:
    stream = zipf_stream(n=N_PRODUCTS, m=M, alpha=1.25, seed=11)
    freq = stream.frequencies()

    # --- one pool, many moments -------------------------------------
    est = FGEstimator(units=256, seed=0)
    est.extend(stream)
    measures = [LpMeasure(1.0), LpMeasure(2.0), HuberMeasure(1.0), L1L2Measure()]
    estimates = est.estimate_many(measures)
    print("moment dashboard (one 256-unit pool, all estimates unbiased):")
    for measure in measures:
        truth = float(sum(measure(f) for f in freq if f))
        got = estimates[measure.name]
        print(
            f"  F_G for {measure.name:<10s} estimate={got:>14.0f} "
            f"true={truth:>14.0f} rel.err={abs(got-truth)/truth:>7.2%}"
        )

    # --- heavy hitters from L2 samples -------------------------------
    report = find_heavy_hitters(stream, N_PRODUCTS, p=2.0, phi=0.1, seed=1)
    true_f2 = exact_fp(freq, 2.0)
    print("\nheavy hitters (phi=0.1 of F2):")
    for item in report.items[:5]:
        print(
            f"  product {item:>4d}: sample share {report.hit_rate(item):.2f}, "
            f"true L2 mass {freq[item]**2 / true_f2:.2f}"
        )

    # --- duplicate detection ------------------------------------------
    dup = find_duplicate(stream, N_PRODUCTS, seed=2)
    print(f"\na product bought more than once (uniform over support): {dup}")
    print(f"  (its true frequency: {freq[dup]})")


if __name__ == "__main__":
    main()
