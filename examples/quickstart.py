"""Quickstart: truly perfect sampling in a few lines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    HuberMeasure,
    L1L2Measure,
    TrulyPerfectGSampler,
    TrulyPerfectLpSampler,
    build_sampler,
    ingest,
    zipf_stream,
)
from repro.core import TrulyPerfectF0Sampler
from repro.stats import evaluate, f0_target, g_target, lp_target


def main() -> None:
    # A skewed stream: 20k updates over a universe of 256 items.
    stream = zipf_stream(n=256, m=20_000, alpha=1.2, seed=0)
    freq = stream.frequencies()
    print(f"stream: m={len(stream)}, n={stream.n}, F0={int((freq > 0).sum())}")

    # --- L2 sampling: indices arrive with probability exactly f_i²/F2 ---
    sampler = TrulyPerfectLpSampler(p=2.0, n=stream.n, delta=0.05, seed=1)
    result = sampler.run(stream)
    if result.is_item:
        print(
            f"L2 sample: item {result.item} "
            f"(true f={freq[result.item]}, pool={sampler.instances} instances)"
        )

    # --- M-estimator sampling: one pass, O(log n) space ---
    for measure in (L1L2Measure(), HuberMeasure(1.0)):
        g = TrulyPerfectGSampler(measure, seed=2, m_hint=len(stream))
        res = g.run(stream)
        print(f"{measure.name} sample: item {res.item} ({g.instances} instances)")

    # --- F0 sampling: uniform over the support, frequency reported ---
    f0 = TrulyPerfectF0Sampler(stream.n, delta=0.05, seed=3)
    res = f0.run(stream)
    print(f"F0 sample: item {res.item} with f={res.metadata['frequency']}")

    # --- The engine way: config-driven construction + batched replay ---
    eng_sampler = build_sampler({"kind": "lp", "p": 2.0, "n": stream.n, "seed": 4})
    ingest(eng_sampler, stream)  # vectorized update_batch under the hood
    res = eng_sampler.sample()
    print(f"engine-built L2 sample: item {res.item}")

    # --- Verify exactness statistically (this is the whole point!) ---
    target = lp_target(freq, 2.0)

    def run(seed):
        sampler = TrulyPerfectLpSampler(p=2.0, n=stream.n, seed=seed)
        ingest(sampler, stream)
        return sampler.sample()

    report = evaluate(run, target, trials=400)
    print("\nexactness check over 400 independent samplers:")
    print(" ", report.row("L2 sampler"))
    print(
        "  -> TV is at the Monte-Carlo noise floor; a chi-square test "
        "cannot tell the sampler from the true distribution."
    )


if __name__ == "__main__":
    main()
