"""Distributed database summaries: many shards, one sampler per shard.

The paper's second motivating scenario: a large distributed database runs
an independent sampler on each shard and publishes the samples as compact
summaries.  Because each truly perfect sample is *exactly*
``G(f_i)/F_G``-distributed, the pooled samples form an unbiased picture
of the global distribution — no per-shard 1/poly(n) error terms to
accumulate across thousands of machines.

This example shards a Zipf workload, runs per-shard L2 samplers, and
reconstructs a global heavy-hitter ranking from the published samples
(plus the metadata the sampler carries for free — Theorem 1.4's
"sampling-based, so metadata comes along" point).

Run:  python examples/distributed_summaries.py
"""

from collections import Counter

import numpy as np

from repro import TrulyPerfectLpSampler, zipf_stream
from repro.stats import lp_target

N = 256
SHARDS = 40
SHARD_M = 4_000
SAMPLES_PER_SHARD = 5


def main() -> None:
    rng = np.random.default_rng(7)
    global_freq = np.zeros(N, dtype=np.int64)
    published: Counter = Counter()

    for shard in range(SHARDS):
        stream = zipf_stream(n=N, m=SHARD_M, alpha=1.3, seed=shard)
        global_freq += stream.frequencies()
        # Each shard publishes a handful of independent samples; the
        # metadata (count since sampling) rides along at no extra cost.
        for k in range(SAMPLES_PER_SHARD):
            sampler = TrulyPerfectLpSampler(
                p=2.0, n=N, delta=0.1, seed=int(rng.integers(2**31))
            )
            res = sampler.run(stream)
            if res.is_item:
                published[res.item] += 1

    total = sum(published.values())
    print(
        f"{SHARDS} shards x {SAMPLES_PER_SHARD} samples -> "
        f"{total} published samples\n"
    )
    target = lp_target(global_freq, 2.0)
    top_true = np.argsort(target)[::-1][:5]
    print("rank  item  global L2 mass  sample share")
    for rank, item in enumerate(top_true, 1):
        share = published.get(int(item), 0) / total
        print(
            f"{rank:>4d}  {int(item):>4d}  {target[item]:>14.4f}  {share:>12.4f}"
        )
    top_sampled = [i for i, __ in published.most_common(3)]
    overlap = len(set(top_sampled) & set(int(i) for i in top_true[:3]))
    print(
        f"\ntop-3 overlap between true L2 ranking and published samples: "
        f"{overlap}/3"
    )
    print(
        "shard samples aggregate into an unbiased global picture because "
        "each shard's sampler carries zero distributional error."
    )


if __name__ == "__main__":
    main()
