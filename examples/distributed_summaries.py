"""Distributed database summaries: K shards, one mergeable sampler each.

The paper's second motivating scenario: a large distributed database
runs an independent sampler on each shard and publishes the samples as
compact summaries.  The engine upgrade makes the story end-to-end real:

1. a ``ShardedSamplerEngine`` hash-partitions the universe across K
   shards and ingests traffic through the vectorized batch kernels;
2. each shard ships its state as *bytes* (``save_state`` — no pickle,
   just arrays + a JSON header), exactly what a summary service would
   publish;
3. the coordinator restores the shard states, merges them, and draws a
   sample whose distribution is **exactly** ``f_i²/F₂`` over the global
   stream — the merge keeps true perfection because every merged
   ingredient is certified, never estimated.

The script finishes by *proving* exactness with the stats harness: over
hundreds of independent engine runs, a chi-square test cannot tell the
merged shard output from the true global L2 distribution.

Run:  python examples/distributed_summaries.py
"""

import numpy as np

from repro import ShardedSamplerEngine, build_sampler, load_state, merged, save_state
from repro.stats import assert_matches_distribution, lp_target
from repro.streams import zipf_stream

N = 256
SHARDS = 8
M = 20_000
TRIALS = 300

CONFIG = {"kind": "lp", "p": 2.0, "n": N, "instances": 48}


def main() -> None:
    stream = zipf_stream(n=N, m=M, alpha=1.3, seed=7)
    target = lp_target(stream.frequencies(), 2.0)

    # --- One engine run, spelled out as shards -> wire -> coordinator ---
    engine = ShardedSamplerEngine(CONFIG, shards=SHARDS, seed=0)
    engine.ingest(stream.items)
    published = [save_state(s) for s in engine.samplers]
    sizes = [len(b) for b in published]
    print(
        f"{SHARDS} shards x {M // 1000}k updates -> published summaries of "
        f"{min(sizes)}-{max(sizes)} bytes each"
    )

    # The coordinator rebuilds samplers from config + bytes, then merges.
    restored = []
    for i, buf in enumerate(published):
        sampler = build_sampler({**CONFIG, "seed": i})
        load_state(sampler, buf)
        restored.append(sampler)
    coordinator = merged(restored)
    res = coordinator.sample()
    label = f"item {res.item}" if res.is_item else res.outcome.name
    print(f"coordinator sample from merged shard state: {label}")

    # --- Exactness proof: merged output == global L2 distribution ---
    def run(seed):
        eng = ShardedSamplerEngine(CONFIG, shards=SHARDS, seed=seed)
        eng.ingest(stream.items)
        return eng.sample()

    report = assert_matches_distribution(run, target, trials=TRIALS)
    print(f"\nexactness over {TRIALS} independent sharded engines:")
    print(" ", report.row(f"sharded L2 (K={SHARDS})"))
    print(
        "  -> merging shard samplers adds zero distributional error: the "
        "chi-square test cannot distinguish the merged output from the "
        "true global f^2/F2 law."
    )


if __name__ == "__main__":
    main()
