"""Privacy audit: can an observer learn anything beyond the samples?

The paper's "perfect security" argument (Section 1): a sampler with
additive error γ may bias a subset S of the universe, and an observer who
knows S can test for that bias given enough samples.  A truly perfect
sampler's output is a deterministic function of the *target distribution
alone*, so no test can extract anything else.

This example plays both roles: a γ-biased sampler and the truly perfect
sampler answer the same queries, and an auditor runs the threshold attack
from ``repro.stats.attack`` at increasing sample budgets.

Run:  python examples/privacy_audit.py
"""

from repro import LpMeasure, TrulyPerfectGSampler, zipf_stream
from repro.perfect import BiasedGSampler
from repro.stats import distinguishing_attack

N = 64
GAMMA = 0.05
SECRET_SET = [3]  # the subset the flawed sampler leaks
STREAM = zipf_stream(n=N, m=2_000, alpha=1.0, seed=5)


def run_truly_perfect(seed):
    return TrulyPerfectGSampler(
        LpMeasure(1.0), seed=seed, m_hint=len(STREAM)
    ).run(STREAM)


def run_biased(seed):
    return BiasedGSampler(
        LpMeasure(1.0), N, gamma=GAMMA, bias_items=SECRET_SET, seed=seed
    ).run(STREAM)


def main() -> None:
    print(
        f"auditing two samplers; the flawed one shifts gamma={GAMMA} mass "
        f"toward items {SECRET_SET}\n"
    )
    print(f"{'samples':>8} {'advantage vs biased':>20} {'vs truly perfect':>18}")
    for budget in (25, 100, 400):
        attack_biased = distinguishing_attack(
            run_truly_perfect, run_biased, bias_items=SECRET_SET,
            samples_per_batch=budget, batches=20, seed=1,
        )
        control = distinguishing_attack(
            run_truly_perfect, run_truly_perfect, bias_items=SECRET_SET,
            samples_per_batch=budget, batches=20, seed=2,
        )
        print(
            f"{budget:>8d} {attack_biased.advantage:>20.3f} "
            f"{control.advantage:>18.3f}"
        )
    print(
        "\nthe attack's advantage against the biased sampler approaches 1 "
        "as the sample budget grows; against the truly perfect sampler it "
        "hovers at coin-flip level forever — there is literally nothing "
        "in the output distribution to find."
    )


if __name__ == "__main__":
    main()
