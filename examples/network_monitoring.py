"""Network monitoring on the serving front door.

The scenario from the paper's introduction, grown up: a monitor watches
a packet stream and publishes one flow sample per "minute" (e.g. a flow
ID for deep inspection).  Where the original example replayed portions
against a fresh sampler each time, this one runs the real serving path —
:class:`repro.serving.SamplerService` — end to end:

* an **ingest task** submits each minute's timestamped traffic through
  the front door (admission → hash router → per-shard queues → 4
  ingest workers);
* several **inspection consoles** (query client threads) sample the
  active window *while ingest is running*, each served lock-free off
  the published fold with its own per-reader RNG stream;
* the **time window does the resetting**: each published sample covers
  the last minute, and because successive minutes are disjoint windows,
  the published sequence is independent across minutes — the background
  ticker compacts the expired generations away instead of anyone
  rebuilding samplers;
* every sample is truly perfect, so the published sequence is *exactly*
  target-distributed minute after minute: an auditor comparing it
  against the true traffic distribution sees zero drift, forever;
* traffic arrives from **tenants** (two ingest sites plus a rate-capped
  "scanner" whose burst is refused at admission), and the run ends with
  a per-tenant summary — admitted packets, shed submits, ingest latency
  p99 — read straight off the service's metrics registry
  (``service.metrics``, the same counters `stats()` and the Prometheus
  exposition report).

Run:  python examples/network_monitoring.py
"""

import threading
import time

import numpy as np

from repro.serving import RateLimited, SamplerService
from repro.stats import lp_target
from repro.streams import zipf_stream
from repro.streams.timestamped import uniform_arrivals

N_FLOWS = 512
PORTION = 5_000  # packets per monitored "minute"
PORTIONS = 24
MINUTE = 60.0  # stream-time seconds per portion == the window horizon
CONSOLES = 4
PLANTED = 0  # the heavy flow whose publication rate we audit

CONFIG = {"kind": "tw_lp", "p": 2.0, "horizon": MINUTE, "instances": 64}

#: The two ingest sites traffic alternates between, plus the abusive
#: tenant whose one oversized burst the token bucket refuses outright.
SITES = ("backbone", "branch")
SCANNER_RATE = (500.0, 1_000.0)  # 500 pkt/s sustained, 1 000 burst cap


def make_portion(k: int):
    """One minute of traffic: Zipf flow sizes with arrival times inside
    the k-th minute."""
    stream = zipf_stream(n=N_FLOWS, m=PORTION, alpha=1.1, seed=1000 + k)
    arrivals = uniform_arrivals(PORTION, PORTION / MINUTE, start=k * MINUTE)
    return np.asarray(stream.items), arrivals


def main() -> None:
    live_samples = [0] * CONSOLES
    live_fails = [0] * CONSOLES
    stop_consoles = threading.Event()
    published = []  # one audited sample per minute

    with SamplerService(
        CONFIG,
        shards=8,
        seed=0,
        ingest_workers=4,
        refresh_interval=0.01,
        compact_interval=0.05,
        tenant_rates={"scanner": SCANNER_RATE},
    ) as service:

        def console(idx: int) -> None:
            """A live inspection console: paced, lock-free sampling."""
            while not stop_consoles.is_set():
                res = service.sample()
                if res.is_item:
                    live_samples[idx] += 1
                else:
                    live_fails[idx] += 1
                time.sleep(0.003)

        consoles = [
            threading.Thread(target=console, args=(c,)) for c in range(CONSOLES)
        ]
        for thread in consoles:
            thread.start()

        print(f"monitoring {PORTIONS} portions of {PORTION} packets each\n")
        scanner_refusals = 0
        for k in range(PORTIONS):
            packets, arrivals = make_portion(k)
            # Live ingest through the concurrent front door, in batches,
            # alternating between the two ingest sites.
            for b, lo in enumerate(range(0, PORTION, 1000)):
                service.submit(
                    packets[lo:lo + 1000],
                    arrivals[lo:lo + 1000],
                    tenant=SITES[b % len(SITES)],
                )
            if k == 0:
                # The scanner tries to dump a whole minute at once; the
                # burst exceeds its token-bucket cap, so admission
                # refuses it atomically — nothing is half-enqueued.
                try:
                    service.submit(packets, arrivals, tenant="scanner")
                except RateLimited:
                    scanner_refusals += 1
            # Publish this minute's sample: drain, republish, draw once.
            service.flush()
            service.refresh()
            published.append(service.sample())

        stop_consoles.set()
        for thread in consoles:
            thread.join()
        stats = service.stats()
        metrics = service.metrics

    hits = sum(1 for r in published if r.is_item and r.item == PLANTED)
    answered = sum(1 for r in published if r.is_item)
    packets, __ = make_portion(0)
    target_mass = lp_target(np.bincount(packets, minlength=N_FLOWS), 2.0)[PLANTED]

    print(
        f"ingested {stats['ingest']['applied_items']} packets through "
        f"{stats['workers']} workers over {stats['shards']} shards"
    )
    q = stats["query"]
    print(
        f"consoles took {sum(live_samples)} live samples "
        f"({sum(live_fails)} FAIL/EMPTY) across {q['refreshes']} fold "
        f"publications; cache hits/misses/rebases "
        f"{stats['engine']['cache']['hits']}/"
        f"{stats['engine']['cache']['misses']}/"
        f"{stats['engine']['cache']['rebases']}"
    )
    freed = stats["compaction"]["bytes_reclaimed"]
    print(
        f"ticker ran {stats['compaction']['passes']} expiry-compaction "
        f"passes ("
        + (
            f"~{freed} bytes of expired generations reclaimed"
            if freed
            else "nothing to reclaim — generation rotation keeps up under "
            "continuous ingest; the ticker matters for idle tenants"
        )
        + ")\n"
    )

    # Per-tenant front-door summary, read straight off the service's
    # metrics registry — the same counters stats() and the Prometheus
    # exposition report.
    submitted = metrics.get("repro_serving_submitted_items_total")
    rate_limited = metrics.get("repro_serving_rate_limited_total")
    shed = metrics.get("repro_serving_backpressure_shed_total")
    print("per-tenant front door (from service.metrics):")
    for tenant in (*SITES, "scanner"):
        refused = int(
            rate_limited.total(tenant=tenant) + shed.total(tenant=tenant)
        )
        print(
            f"  {tenant:<9} admitted {int(submitted.total(tenant=tenant)):>7} "
            f"packets, refused {refused} submit(s)"
        )
    assert int(rate_limited.total(tenant="scanner")) == scanner_refusals == 1
    submit_p99 = metrics.get("repro_serving_submit_seconds").labels(
        outcome="accepted"
    ).quantile(0.99)
    apply_p99 = max(
        child.quantile(0.99)
        for child in metrics.get(
            "repro_serving_ingest_apply_seconds"
        ).children().values()
    )
    print(
        f"  ingest latency p99: submit {submit_p99 * 1e6:.0f} µs (accepted), "
        f"worst-shard apply {apply_p99 * 1e6:.0f} µs\n"
    )

    print(f"flow {PLANTED}: true L2 sampling mass ≈ {target_mass:.3f}")
    print(
        f"published-sample hit rate over {PORTIONS} minutes: "
        f"{hits}/{answered} ≈ {hits / max(1, answered):.3f}"
    )
    print(
        "\neach minute's published sample covers a disjoint window, so the "
        "published sequence is independent and exactly target-distributed: "
        "the monitor can run forever — under live concurrent ingest and "
        "any number of consoles — and an auditor comparing publications "
        "against the true traffic distribution sees zero drift."
    )


if __name__ == "__main__":
    main()
