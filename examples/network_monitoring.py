"""Network monitoring: periodic sampling over successive traffic portions.

The scenario from the paper's introduction: a monitor resets its samplers
every "minute" and publishes one sample per portion (e.g. a flow ID for
deep inspection).  With a γ-biased sampler those published samples drift
measurably over many portions — a compliance/privacy problem; the truly
perfect sampler's samples are exactly target-distributed forever.

Run:  python examples/network_monitoring.py
"""

import numpy as np

from repro import LpMeasure, TrulyPerfectLpSampler, zipf_stream
from repro.perfect import BiasedGSampler
from repro.stats import bernoulli_accumulation, lp_target

N_FLOWS = 512
PORTION = 5_000
PORTIONS = 48
GAMMA = 0.01  # the additive error of a hypothetical "perfect" sampler


def make_portion(k: int):
    """One 'minute' of traffic: Zipf flow sizes, slight drift over time."""
    return zipf_stream(
        n=N_FLOWS, m=PORTION, alpha=1.1 + 0.002 * k, seed=1000 + k
    )


def main() -> None:
    rng = np.random.default_rng(0)
    heavy_hits_perfect = 0
    heavy_hits_biased = 0
    planted = 0  # the flow the biased sampler favours

    print(f"monitoring {PORTIONS} portions of {PORTION} packets each\n")
    for k in range(PORTIONS):
        stream = make_portion(k)
        freq = stream.frequencies()

        # Truly perfect L2 sampler: favours heavy flows quadratically.
        sampler = TrulyPerfectLpSampler(
            p=2.0, n=N_FLOWS, delta=0.05, seed=int(rng.integers(2**31))
        )
        res = sampler.run(stream)
        if res.is_item and res.item == planted:
            heavy_hits_perfect += 1

        # The γ-biased alternative (models a 1/poly-error perfect sampler).
        biased = BiasedGSampler(
            LpMeasure(2.0), N_FLOWS, gamma=GAMMA, bias_items=[planted],
            seed=int(rng.integers(2**31)),
        )
        biased.extend(stream)
        res_b = biased.sample()
        if res_b.is_item and res_b.item == planted:
            heavy_hits_biased += 1

    stream = make_portion(0)
    target_mass = lp_target(stream.frequencies(), 2.0)[planted]
    print(f"flow {planted}: true L2 sampling mass ≈ {target_mass:.3f}")
    print(
        f"published-sample hit rate over {PORTIONS} portions: "
        f"truly perfect {heavy_hits_perfect / PORTIONS:.3f}, "
        f"biased {heavy_hits_biased / PORTIONS:.3f}"
    )
    drift = bernoulli_accumulation(GAMMA, PORTIONS)
    print(
        f"\njoint-distribution drift after {PORTIONS} portions: "
        f"truly perfect = 0.0000 (exact), biased ≥ {drift:.4f}"
    )
    print(
        "an auditor comparing the published samples against the true "
        "traffic distribution can detect the biased monitor; the truly "
        "perfect monitor is information-theoretically indistinguishable "
        "from the target distribution."
    )


if __name__ == "__main__":
    main()
