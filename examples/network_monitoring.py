"""Network monitoring on the serving front door.

The scenario from the paper's introduction, grown up: a monitor watches
a packet stream and publishes one flow sample per "minute" (e.g. a flow
ID for deep inspection).  Where the original example replayed portions
against a fresh sampler each time, this one runs the real serving path —
:class:`repro.serving.SamplerService` — end to end:

* an **ingest task** submits each minute's timestamped traffic through
  the front door (admission → hash router → per-shard queues → 4
  ingest workers);
* several **inspection consoles** (query client threads) sample the
  active window *while ingest is running*, each served lock-free off
  the published fold with its own per-reader RNG stream;
* the **time window does the resetting**: each published sample covers
  the last minute, and because successive minutes are disjoint windows,
  the published sequence is independent across minutes — the background
  ticker compacts the expired generations away instead of anyone
  rebuilding samplers;
* every sample is truly perfect, so the published sequence is *exactly*
  target-distributed minute after minute: an auditor comparing it
  against the true traffic distribution sees zero drift, forever.

Run:  python examples/network_monitoring.py
"""

import threading
import time

import numpy as np

from repro.serving import SamplerService
from repro.stats import lp_target
from repro.streams import zipf_stream
from repro.streams.timestamped import uniform_arrivals

N_FLOWS = 512
PORTION = 5_000  # packets per monitored "minute"
PORTIONS = 24
MINUTE = 60.0  # stream-time seconds per portion == the window horizon
CONSOLES = 4
PLANTED = 0  # the heavy flow whose publication rate we audit

CONFIG = {"kind": "tw_lp", "p": 2.0, "horizon": MINUTE, "instances": 64}


def make_portion(k: int):
    """One minute of traffic: Zipf flow sizes with arrival times inside
    the k-th minute."""
    stream = zipf_stream(n=N_FLOWS, m=PORTION, alpha=1.1, seed=1000 + k)
    arrivals = uniform_arrivals(PORTION, PORTION / MINUTE, start=k * MINUTE)
    return np.asarray(stream.items), arrivals


def main() -> None:
    live_samples = [0] * CONSOLES
    live_fails = [0] * CONSOLES
    stop_consoles = threading.Event()
    published = []  # one audited sample per minute

    with SamplerService(
        CONFIG,
        shards=8,
        seed=0,
        ingest_workers=4,
        refresh_interval=0.01,
        compact_interval=0.05,
    ) as service:

        def console(idx: int) -> None:
            """A live inspection console: paced, lock-free sampling."""
            while not stop_consoles.is_set():
                res = service.sample()
                if res.is_item:
                    live_samples[idx] += 1
                else:
                    live_fails[idx] += 1
                time.sleep(0.003)

        consoles = [
            threading.Thread(target=console, args=(c,)) for c in range(CONSOLES)
        ]
        for thread in consoles:
            thread.start()

        print(f"monitoring {PORTIONS} portions of {PORTION} packets each\n")
        for k in range(PORTIONS):
            packets, arrivals = make_portion(k)
            # Live ingest through the concurrent front door, in batches.
            for lo in range(0, PORTION, 1000):
                service.submit(packets[lo:lo + 1000], arrivals[lo:lo + 1000])
            # Publish this minute's sample: drain, republish, draw once.
            service.flush()
            service.refresh()
            published.append(service.sample())

        stop_consoles.set()
        for thread in consoles:
            thread.join()
        stats = service.stats()

    hits = sum(1 for r in published if r.is_item and r.item == PLANTED)
    answered = sum(1 for r in published if r.is_item)
    packets, __ = make_portion(0)
    target_mass = lp_target(np.bincount(packets, minlength=N_FLOWS), 2.0)[PLANTED]

    print(
        f"ingested {stats['ingest']['applied_items']} packets through "
        f"{stats['workers']} workers over {stats['shards']} shards"
    )
    q = stats["query"]
    print(
        f"consoles took {sum(live_samples)} live samples "
        f"({sum(live_fails)} FAIL/EMPTY) across {q['refreshes']} fold "
        f"publications; cache hits/misses/rebases "
        f"{stats['engine']['cache']['hits']}/"
        f"{stats['engine']['cache']['misses']}/"
        f"{stats['engine']['cache']['rebases']}"
    )
    freed = stats["compaction"]["bytes_reclaimed"]
    print(
        f"ticker ran {stats['compaction']['passes']} expiry-compaction "
        f"passes ("
        + (
            f"~{freed} bytes of expired generations reclaimed"
            if freed
            else "nothing to reclaim — generation rotation keeps up under "
            "continuous ingest; the ticker matters for idle tenants"
        )
        + ")\n"
    )

    print(f"flow {PLANTED}: true L2 sampling mass ≈ {target_mass:.3f}")
    print(
        f"published-sample hit rate over {PORTIONS} minutes: "
        f"{hits}/{answered} ≈ {hits / max(1, answered):.3f}"
    )
    print(
        "\neach minute's published sample covers a disjoint window, so the "
        "published sequence is independent and exactly target-distributed: "
        "the monitor can run forever — under live concurrent ingest and "
        "any number of consoles — and an auditor comparing publications "
        "against the true traffic distribution sees zero drift."
    )


if __name__ == "__main__":
    main()
