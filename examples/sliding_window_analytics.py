"""Sliding-window analytics: a multi-resolution live dashboard.

Social-media / event-detection scenario (Section 1's sliding-window
motivation), upgraded to *time-based* windows: operations wants the same
questions answered over the last 30 seconds, 2 minutes, and 10 minutes
simultaneously —

* "what's trending right now?"  → truly perfect L2 sample (window mass
  quadratically amplifies bursting topics);
* "pick any currently-active topic, uniformly" → windowed F0 sample;
* "how bursty is the moment?" → exact window F2 per resolution (oracle).

One `WindowBank` ingests the whole timestamped firehose in batches and
serves every rung; the stream's arrival clock is bursty, so time windows
and count windows genuinely disagree (during the burst a time window
holds ~8x the usual update count).

Run:  python examples/sliding_window_analytics.py
"""

import numpy as np

from repro import WindowBank
from repro.sketches.lp_norm import exact_fp
from repro.streams import TimestampedStream

N_TOPICS = 128
LADDER = (30.0, 120.0, 600.0)  # 30 s / 2 min / 10 min


def make_bursty_feed(seed: int = 0) -> TimestampedStream:
    """Background chatter at 20 ev/s, a 60-second burst on topic 7 at
    160 ev/s, then recovery — timestamps carry the story."""
    rng = np.random.default_rng(seed)
    phases = []
    clock = 0.0
    for rate, seconds, burst_topic in (
        (20.0, 600.0, None),      # 10 min of background
        (160.0, 60.0, 7),         # 1 min burst on topic 7
        (20.0, 180.0, None),      # 3 min recovery
    ):
        m = int(rate * seconds)
        gaps = rng.exponential(scale=1.0 / rate, size=m)
        ts = clock + np.cumsum(gaps)
        clock = float(ts[-1])
        items = rng.integers(0, N_TOPICS, size=m)
        if burst_topic is not None:
            items = np.where(rng.random(m) < 0.6, burst_topic, items)
        phases.append((items, ts))
    items = np.concatenate([p[0] for p in phases])
    ts = np.concatenate([p[1] for p in phases])
    return TimestampedStream(items, ts, N_TOPICS)


def main() -> None:
    feed = make_bursty_feed()
    bank = WindowBank(
        LADDER, p=2.0, n=N_TOPICS, instances=200, expected_rate=20.0, seed=1
    )

    # Dashboard ticks: pre-burst, mid-burst, and after recovery.
    ticks = [590.0, 640.0, 820.0]
    cursor = 0
    for tick in ticks:
        upto = int(np.searchsorted(feed.timestamps, tick, side="right"))
        bank.update_batch(feed.items[cursor:upto], feed.timestamps[cursor:upto])
        cursor = upto
        print(f"t={tick:7.1f}s  (ingested {bank.position} events)")
        for horizon in LADDER:
            wfreq = feed.window_frequencies(horizon, now=bank.now)
            f2 = exact_fp(wfreq, 2.0)
            f0 = int((wfreq > 0).sum())
            res = bank.sample(horizon)
            trending = res.item if res.is_item else "-"
            active = bank.sample_distinct(horizon)
            uniform = active.item if active.is_item else "-"
            print(
                f"    window {horizon:5.0f}s  F0={f0:3d}  F2={f2:>10.0f}  "
                f"L2 trending: {trending!s:>4s}  uniform active: {uniform!s:>4s}"
            )
    print(
        "\nmid-burst (t=640) the 30s rung concentrates its L2 samples on "
        "topic 7 — its window mass is quadratically amplified — while the "
        "10-minute rung still averages the burst away; after recovery the "
        "short windows forget it exactly and provably, since expired "
        "updates carry zero sampling mass."
    )

    # Quantify: mid-burst hit rate of topic 7 on the finest rung.
    prefix = feed.prefix_until(640.0)
    hits = 0
    trials = 40
    for seed in range(trials):
        b = WindowBank((30.0,), p=2.0, instances=200, seed=seed)
        b.update_batch(prefix.items, prefix.timestamps)
        res = b.sample(30.0)
        hits += res.is_item and res.item == 7
    wfreq = prefix.window_frequencies(30.0)
    mass = wfreq[7] ** 2 / exact_fp(wfreq, 2.0)
    print(
        f"burst check (30s rung): topic-7 L2 mass={mass:.2f}, "
        f"sampled {hits}/{trials} times"
    )


if __name__ == "__main__":
    main()
