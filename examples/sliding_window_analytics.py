"""Sliding-window analytics: trending items over the last W events.

Social-media / event-detection scenario (Section 1's sliding-window
motivation): only the most recent ``W`` events matter.  A sliding-window
L2 sampler surfaces currently-trending items; the smooth histogram tracks
the window's F2 ("how bursty is the moment?"); and the windowed F0
sampler answers "pick any currently-active topic, uniformly".

Run:  python examples/sliding_window_analytics.py
"""

import numpy as np

from repro import (
    SlidingWindowF0Sampler,
    SlidingWindowLpSampler,
)
from repro.sketches.lp_norm import exact_fp
from repro.sketches.smooth_histogram import (
    ExactSuffixFp,
    SmoothHistogram,
    fp_smoothness,
)
from repro.streams import Stream

N_TOPICS = 128
WINDOW = 2_000


def make_bursty_stream(seed: int = 0) -> Stream:
    """Three phases: background chatter, a burst on topic 7, recovery."""
    rng = np.random.default_rng(seed)
    phase1 = rng.integers(0, N_TOPICS, size=3_000)
    burst = np.where(rng.random(2_000) < 0.6, 7, rng.integers(0, N_TOPICS, 2_000))
    phase3 = rng.integers(0, N_TOPICS, size=1_000)
    return Stream(np.concatenate([phase1, burst, phase3]), N_TOPICS)


def main() -> None:
    stream = make_bursty_stream()
    lp = SlidingWindowLpSampler(2.0, window=WINDOW, instances=150, seed=1)
    f0 = SlidingWindowF0Sampler(N_TOPICS, window=WINDOW, seed=2)
    __, beta = fp_smoothness(2.0, 0.5)
    hist = SmoothHistogram(lambda: ExactSuffixFp(2.0), beta, WINDOW)

    checkpoints = [3_000, 4_500, 6_000]
    for t, item in enumerate(stream, 1):
        lp.update(item)
        f0.update(item)
        hist.update(item)
        if t in checkpoints:
            wfreq = stream.prefix(t).window_frequencies(WINDOW)
            true_f2 = exact_fp(wfreq, 2.0)
            res = lp.sample()
            trending = res.item if res.is_item else "-"
            any_active = f0.sample().item
            print(
                f"t={t:>5d}  window-F2 est={hist.estimate():>12.0f} "
                f"(true {true_f2:>12.0f})  "
                f"L2 trending sample: {trending!s:>4s}  "
                f"uniform active topic: {any_active}"
            )
    print(
        "\nduring the burst (t=4500) the L2 sample concentrates on topic 7 "
        "because its window mass is quadratically amplified; afterwards "
        "the window forgets the burst — exactly and provably, since "
        "expired updates carry zero sampling mass."
    )
    # Quantify: burst-phase hit rate of topic 7 across many samplers.
    prefix = stream.prefix(4_500)
    hits = 0
    trials = 40
    for seed in range(trials):
        s = SlidingWindowLpSampler(2.0, window=WINDOW, instances=150, seed=seed)
        res = s.run(prefix)
        hits += res.is_item and res.item == 7
    wfreq = prefix.window_frequencies(WINDOW)
    mass = wfreq[7] ** 2 / exact_fp(wfreq, 2.0)
    print(
        f"burst check: topic-7 L2 mass={mass:.2f}, sampled {hits}/{trials} "
        f"times"
    )


if __name__ == "__main__":
    main()
