"""Distributional exactness and sizing of the truly perfect Lp samplers
(Theorems 3.3, 3.4, 3.5)."""

import numpy as np
import pytest

from helpers import assert_matches_distribution
from repro.core import TrulyPerfectLpSampler, lp_instance_bound
from repro.stats import lp_target
from repro.streams import stream_from_frequencies

FREQ = np.array([1, 2, 3, 5, 8, 13, 21])
STREAM = stream_from_frequencies(FREQ, order="random", seed=7)


class TestExactness:
    @pytest.mark.parametrize("p", [0.5, 1.0, 1.5, 2.0])
    def test_distribution_matches_target(self, p):
        target = lp_target(FREQ, p)

        def run(seed):
            s = TrulyPerfectLpSampler(
                p=p, n=len(FREQ), m_hint=len(STREAM), seed=seed
            )
            return s.run(STREAM)

        assert_matches_distribution(run, target, trials=3000, max_fail_rate=0.05)

    def test_p_equal_one_is_reservoir(self):
        """p = 1 accepts on the first instance always (ζ = increment = 1)."""
        s = TrulyPerfectLpSampler(p=1.0, n=len(FREQ), seed=0)
        res = s.run(STREAM)
        assert res.is_item

    def test_skewed_stream_p2(self):
        freq = np.array([50, 1, 1, 1, 1])
        stream = stream_from_frequencies(freq, order="random", seed=1)
        target = lp_target(freq, 2.0)

        def run(seed):
            return TrulyPerfectLpSampler(p=2.0, n=5, seed=seed).run(stream)

        assert_matches_distribution(run, target, trials=2500, max_fail_rate=0.05)


class TestSizing:
    def test_instance_bound_scales_with_n(self):
        small = lp_instance_bound(2.0, 16, 0.1)
        large = lp_instance_bound(2.0, 1024, 0.1)
        # n^{1/2} scaling: 1024/16 = 64 => factor 8.
        assert large / small == pytest.approx(8.0, rel=0.15)

    def test_instance_bound_sub_one_scales_with_m(self):
        small = lp_instance_bound(0.5, 16, 0.1, m_hint=100)
        large = lp_instance_bound(0.5, 16, 0.1, m_hint=10000)
        assert large / small == pytest.approx(10.0, rel=0.15)

    def test_sub_one_requires_m_hint(self):
        with pytest.raises(ValueError):
            lp_instance_bound(0.5, 16, 0.1)

    def test_p_one_needs_constant_instances(self):
        assert lp_instance_bound(1.0, 10**6, 0.5) <= 4

    def test_validates_delta(self):
        with pytest.raises(ValueError):
            lp_instance_bound(2.0, 16, 0.0)


class TestMechanics:
    def test_empty_stream_is_bot(self):
        s = TrulyPerfectLpSampler(p=2.0, n=8, seed=0)
        assert s.sample().is_empty

    def test_normalizer_certified(self):
        """ζ must dominate the worst increment of the true frequencies."""
        s = TrulyPerfectLpSampler(p=2.0, n=len(FREQ), seed=0)
        s.extend(STREAM)
        linf = int(FREQ.max())
        worst = linf**2 - (linf - 1) ** 2
        assert s.normalizer() >= worst - 1e-9

    def test_fail_rate_within_delta(self):
        fails = 0
        trials = 300
        for seed in range(trials):
            s = TrulyPerfectLpSampler(p=2.0, n=len(FREQ), delta=0.05, seed=seed)
            if s.run(STREAM).is_fail:
                fails += 1
        assert fails / trials <= 0.05 + 0.03

    def test_validates_params(self):
        with pytest.raises(ValueError):
            TrulyPerfectLpSampler(p=0.0, n=4)
        with pytest.raises(ValueError):
            TrulyPerfectLpSampler(p=1.0, n=0)

    def test_space_words_includes_mg(self):
        s2 = TrulyPerfectLpSampler(p=2.0, n=64, instances=10, seed=0)
        s1 = TrulyPerfectLpSampler(p=1.0, n=64, instances=10, seed=0)
        assert s2.space_words > s1.space_words  # MG counters included

    def test_result_metadata(self):
        s = TrulyPerfectLpSampler(p=2.0, n=len(FREQ), seed=11)
        res = s.run(STREAM)
        assert res.is_item
        assert res.metadata["count"] >= 1
        assert res.metadata["zeta"] > 0
