"""The unified sampler lifecycle: protocol conformance for every
registry kind, snapshot round-trips through the versioned envelope,
expiry-compaction semantics (idempotence, answer preservation, clock
enforcement), and merge-watermark skew rejection."""

import copy
import math

import numpy as np
import pytest

from repro.engine import (
    ShardedSamplerEngine,
    Snapshot,
    StreamSampler,
    WatermarkSkewError,
    build_sampler,
    kind_spec,
    load_state,
    sampler_kinds,
    save_state,
    state_from_bytes,
    state_to_bytes,
)
from repro.lifecycle import (
    ENVELOPE_VERSION,
    conforms,
    missing_hooks,
    supports_merge,
)
from repro.streams import with_arrivals, zipf_stream
from repro.windows import WindowBank

#: One small config per registered kind — the parametrization base for
#: the conformance and round-trip suites.  Keeping this in lockstep with
#: the registry is itself a test (test_config_table_covers_registry).
KIND_CONFIGS = {
    "g": {"kind": "g", "measure": {"name": "l1l2"}, "m_hint": 500},
    "lp": {"kind": "lp", "p": 2.0, "n": 64},
    "f0": {"kind": "f0", "n": 64},
    "oracle-f0": {"kind": "oracle-f0", "n": 64},
    "algorithm5-f0": {"kind": "algorithm5-f0", "n": 64},
    "pool": {"kind": "pool", "instances": 8},
    "bounded": {"kind": "bounded", "measure": {"name": "tukey"}, "n": 64},
    "sw-g": {"kind": "sw-g", "measure": {"name": "l1l2"}, "window": 60,
             "instances": 8},
    "sw-lp": {"kind": "sw-lp", "p": 2.0, "window": 60, "instances": 8},
    "sw-f0": {"kind": "sw-f0", "n": 64, "window": 60},
    "tw_g": {"kind": "tw_g", "measure": {"name": "l1l2"}, "horizon": 10.0,
             "instances": 8},
    "tw_lp": {"kind": "tw_lp", "p": 2.0, "horizon": 10.0, "instances": 8},
    "tw_f0": {"kind": "tw_f0", "n": 64, "horizon": 10.0},
    "window_bank": {"kind": "window_bank", "resolutions": [10.0, 40.0],
                    "p": 2.0, "n": 64, "instances": 8},
}

TIMED_KINDS = {"tw_g", "tw_lp", "tw_f0", "window_bank"}


def _feed(seed=0):
    return with_arrivals(
        zipf_stream(64, 400, alpha=1.2, seed=seed),
        process="poisson",
        rate=20.0,
        seed=seed + 1,
    )


def _ingest_half(sampler, kind, feed, half):
    lo, hi = (0, len(feed) // 2) if half == 0 else (len(feed) // 2, len(feed))
    if kind in TIMED_KINDS:
        sampler.update_batch(feed.items[lo:hi], feed.timestamps[lo:hi])
    else:
        sampler.update_batch(np.asarray(feed.items[lo:hi]))


class TestProtocolConformance:
    def test_config_table_covers_registry(self):
        assert set(KIND_CONFIGS) == set(sampler_kinds())

    @pytest.mark.parametrize("kind", sorted(KIND_CONFIGS))
    def test_every_registered_kind_implements_stream_sampler(self, kind):
        sampler = build_sampler({**KIND_CONFIGS[kind], "seed": 0})
        assert conforms(sampler), (
            f"kind {kind!r} missing lifecycle hooks: {missing_hooks(sampler)}"
        )
        assert isinstance(sampler, StreamSampler)
        assert supports_merge(sampler)

    @pytest.mark.parametrize("kind", sorted(KIND_CONFIGS))
    def test_static_kinds_have_no_clock(self, kind):
        sampler = build_sampler({**KIND_CONFIGS[kind], "seed": 0})
        if kind in TIMED_KINDS:
            assert sampler.watermark() is None  # pristine: no clock yet
        else:
            _ingest_half(sampler, kind, _feed(), 0)
            assert sampler.watermark() is None
            assert sampler.compact() == 0

    def test_missing_hooks_reports_gaps(self):
        class Partial:
            def update(self, item):
                pass

        assert "update" not in missing_hooks(Partial())
        assert "compact" in missing_hooks(Partial())
        assert not conforms(Partial())

    @pytest.mark.parametrize("kind", ["sw-g", "sw-lp", "sw-f0"])
    def test_count_window_merge_raises_and_is_declared(self, kind):
        assert not kind_spec(kind).mergeable
        a = build_sampler({**KIND_CONFIGS[kind], "seed": 0})
        b = build_sampler({**KIND_CONFIGS[kind], "seed": 0})
        with pytest.raises(ValueError, match="arrival order"):
            a.merge(b)

    def test_engine_rejects_unmergeable_kind_at_construction(self):
        with pytest.raises(ValueError, match="mergeable"):
            ShardedSamplerEngine(KIND_CONFIGS["sw-f0"], shards=2)


class TestSnapshotEnvelope:
    @pytest.mark.parametrize("kind", sorted(KIND_CONFIGS))
    def test_roundtrip_continues_bitwise(self, kind):
        """Envelope round-trip mid-stream, then both copies ingest the
        same tail: states must stay bytes-identical."""
        feed = _feed(seed=3)
        a = build_sampler({**KIND_CONFIGS[kind], "seed": 7})
        _ingest_half(a, kind, feed, 0)
        buf = save_state(a)
        b = build_sampler({**KIND_CONFIGS[kind], "seed": 99})
        load_state(b, buf)
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())
        _ingest_half(a, kind, feed, 1)
        _ingest_half(b, kind, feed, 1)
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())

    @pytest.mark.parametrize("kind", ["f0", "algorithm5-f0", "sw-f0", "tw_f0"])
    def test_restored_f0_sampler_draws_identical_items(self, kind):
        """Regression: the F0 samplers' S-regime draws must not depend
        on set/dict iteration order — a restored sampler (whose
        insertion history differs) has to return the same item for the
        same coin as the original."""
        feed = _feed(seed=50)
        for seed in range(12):
            a = build_sampler({**KIND_CONFIGS[kind], "seed": seed})
            _ingest_half(a, kind, feed, 0)
            _ingest_half(a, kind, feed, 1)
            b = build_sampler({**KIND_CONFIGS[kind], "seed": seed + 1000})
            load_state(b, save_state(a))
            ra, rb = a.sample(), b.sample()
            assert ra.outcome == rb.outcome, seed
            assert ra.item == rb.item, seed

    @pytest.mark.parametrize("kind", sorted(KIND_CONFIGS))
    def test_envelope_is_kind_tagged_and_versioned(self, kind):
        sampler = build_sampler({**KIND_CONFIGS[kind], "seed": 1})
        env = Snapshot.from_bytes(save_state(sampler))
        assert env.kind == sampler.snapshot()["kind"]
        assert env.version == ENVELOPE_VERSION

    def test_legacy_unenveloped_buffer_still_loads(self):
        """PR 1/2 save_state wrote the raw snapshot tree; load_state must
        keep accepting those buffers."""
        a = build_sampler({**KIND_CONFIGS["lp"], "seed": 5})
        a.update_batch(np.arange(64).repeat(4))
        legacy = state_to_bytes(a.snapshot())  # the old format
        b = build_sampler({**KIND_CONFIGS["lp"], "seed": 6})
        load_state(b, legacy)
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())
        assert Snapshot.from_bytes(legacy).version == 0

    def test_unknown_envelope_version_fails_loudly(self):
        buf = state_to_bytes(
            {"__snapshot__": 999, "kind": "lp", "payload": {"kind": "lp"}}
        )
        with pytest.raises(ValueError, match="envelope version"):
            Snapshot.from_bytes(buf)

    def test_envelope_bytes_decode_as_plain_tree(self):
        """An enveloped buffer is still a plain codec buffer — readers
        that only know the codec can open it and find the kind tag."""
        sampler = build_sampler({**KIND_CONFIGS["f0"], "seed": 2})
        tree = state_from_bytes(save_state(sampler))
        assert tree["__snapshot__"] == ENVELOPE_VERSION
        assert tree["kind"] == "truly_perfect_f0"
        assert tree["payload"]["kind"] == "truly_perfect_f0"

    def test_restore_into_wrong_sampler_fails(self):
        a = build_sampler({**KIND_CONFIGS["tw_g"], "seed": 1})
        b = build_sampler({**KIND_CONFIGS["tw_f0"], "seed": 1})
        with pytest.raises(ValueError):
            load_state(b, save_state(a))


class TestMemoryAccounting:
    @pytest.mark.parametrize("kind", sorted(KIND_CONFIGS))
    def test_size_positive_and_grows_with_state(self, kind):
        sampler = build_sampler({**KIND_CONFIGS[kind], "seed": 4})
        empty = sampler.approx_size_bytes()
        assert empty > 0
        feed = _feed(seed=4)
        _ingest_half(sampler, kind, feed, 0)
        _ingest_half(sampler, kind, feed, 1)
        assert sampler.approx_size_bytes() >= empty

    def test_engine_size_sums_shards(self):
        engine = ShardedSamplerEngine(KIND_CONFIGS["lp"], shards=4, seed=0)
        assert engine.approx_size_bytes() == sum(
            s.approx_size_bytes() for s in engine.samplers
        )


class TestExpiryCompaction:
    @pytest.mark.parametrize("kind", sorted(TIMED_KINDS))
    def test_compact_is_idempotent(self, kind):
        feed = _feed(seed=8)
        sampler = build_sampler({**KIND_CONFIGS[kind], "seed": 8})
        _ingest_half(sampler, kind, feed, 0)
        _ingest_half(sampler, kind, feed, 1)
        later = sampler.watermark() + 10_000.0
        first = sampler.compact(later)
        assert first > 0  # everything expired: state reclaimed
        frozen = state_to_bytes(sampler.snapshot())
        assert sampler.compact(later) == 0
        assert sampler.compact() == 0
        assert state_to_bytes(sampler.snapshot()) == frozen

    def test_fully_expired_stream_releases_generations_and_answers_empty(self):
        feed = _feed(seed=9)
        sampler = build_sampler({**KIND_CONFIGS["tw_lp"], "seed": 9})
        sampler.update_batch(feed.items, feed.timestamps)
        assert sampler.generation_count > 0
        before = sampler.approx_size_bytes()
        later = sampler.watermark() + 1_000.0
        freed = sampler.compact(later)
        assert freed > 0
        assert sampler.generation_count == 0
        assert sampler.approx_size_bytes() < before
        assert sampler.sample().is_empty
        assert sampler.position == len(feed)  # accounting survives

    def test_compact_advances_clock_and_rejects_stale_updates(self):
        """compact(now) is a promise that future updates arrive at
        ts ≥ now; a straggler behind the watermark must fail loudly
        instead of silently resurrecting dropped window state."""
        sampler = build_sampler({**KIND_CONFIGS["tw_g"], "seed": 10})
        sampler.update(3, 5.0)
        sampler.compact(1_000.0)
        assert sampler.watermark() == 1_000.0
        with pytest.raises(ValueError, match="non-decreasing"):
            sampler.update(4, 10.0)
        sampler.update(4, 1_000.5)  # at/after the watermark is fine
        assert sampler.sample().is_item

    @pytest.mark.parametrize("kind", ["tw_g", "tw_lp"])
    def test_compact_at_own_watermark_leaves_live_generations_bitwise(
        self, kind
    ):
        """With the clock at the newest arrival, every kept generation
        is still live — compacting must free nothing and change nothing
        (the bitwise batch/scalar identity of live generations is the
        invariant the whole windowed design rests on)."""
        feed = _feed(seed=11)
        sampler = build_sampler({**KIND_CONFIGS[kind], "seed": 11})
        half = len(feed) // 2
        sampler.update_batch(feed.items[:half], feed.timestamps[:half])
        frozen = state_to_bytes(sampler.snapshot())
        assert sampler.compact() == 0
        assert state_to_bytes(sampler.snapshot()) == frozen
        sampler.update_batch(feed.items[half:], feed.timestamps[half:])
        res = sampler.sample()
        assert res.is_item or res.is_fail  # the live window still answers

    def test_tw_f0_compact_prunes_stale_timestamps_only(self):
        sampler = build_sampler({**KIND_CONFIGS["tw_f0"], "seed": 12})
        for item in range(10):
            sampler.update(item, 1.0 + item * 0.1)
        sampler.update(63, 100.0)  # horizon 10: items at t≈1 expired
        freed = sampler.compact()
        assert freed > 0
        res = sampler.sample()
        assert res.is_item and res.item == 63

    def test_engine_compact_cadence_and_query_pass(self):
        feed = _feed(seed=13)
        engine = ShardedSamplerEngine(
            KIND_CONFIGS["tw_g"], shards=2, seed=13, compact_every=100
        )
        engine.ingest(feed)
        assert engine.watermark() == max(
            w for w in engine.watermarks() if w is not None
        )
        later = engine.watermark() + 10_000.0
        assert engine.compact(later) > 0
        assert engine.sample().is_empty  # query-time pass + empty window
        assert engine.approx_size_bytes() > 0

    def test_static_kind_compact_via_engine_is_noop(self):
        engine = ShardedSamplerEngine(KIND_CONFIGS["lp"], shards=2, seed=14)
        engine.ingest(np.arange(64).repeat(10))
        assert engine.compact() == 0
        assert engine.watermark() is None
        assert engine.sample().outcome is not None


class TestMergeWatermarks:
    CFG = KIND_CONFIGS["tw_g"]

    def _engines(self, skew_tolerance):
        a = ShardedSamplerEngine(
            self.CFG, shards=2, seed=1, max_watermark_skew=skew_tolerance
        )
        b = ShardedSamplerEngine(
            self.CFG,
            shards=2,
            seed=2,
            partitioner=a.partitioner,
            max_watermark_skew=skew_tolerance,
        )
        return a, b

    def test_skewed_clocks_rejected_at_merge(self):
        feed = _feed(seed=20)
        a, b = self._engines(skew_tolerance=60.0)
        a.ingest(feed)
        b.ingest(feed.items, timestamps=feed.timestamps + 500.0)
        with pytest.raises(WatermarkSkewError):
            a.merge(b)

    def test_skew_within_tolerance_merges(self):
        feed = _feed(seed=21)
        a, b = self._engines(skew_tolerance=1_000.0)
        a.ingest(feed)
        b.ingest(feed.items, timestamps=feed.timestamps + 500.0)
        a.merge(b)
        assert a.position == 2 * len(feed)

    def test_default_tolerance_is_permissive(self):
        feed = _feed(seed=22)
        a = ShardedSamplerEngine(self.CFG, shards=2, seed=3)
        b = ShardedSamplerEngine(
            self.CFG, shards=2, seed=4, partitioner=a.partitioner
        )
        a.ingest(feed)
        b.ingest(feed.items, timestamps=feed.timestamps + 10_000.0)
        a.merge(b)  # inf tolerance: legacy behavior preserved

    def test_query_time_fold_checks_skew_too(self):
        feed = _feed(seed=23)
        engine = ShardedSamplerEngine(
            self.CFG, shards=2, seed=5, max_watermark_skew=1.0
        )
        engine.ingest(feed)
        # Skew one shard's clock via a direct compact on its sampler.
        engine.samplers[0].compact(feed.timestamps[-1] + 500.0)
        with pytest.raises(WatermarkSkewError):
            engine.merged_sampler()

    def test_sample_with_now_cannot_launder_skew(self):
        """Regression: sample(now=...) runs a compaction pass that syncs
        every shard clock to the query time — the skew check must fire
        on the shards' *own* clocks first, or the sync would erase the
        very skew it guards against."""
        feed = _feed(seed=24)
        engine = ShardedSamplerEngine(
            self.CFG, shards=2, seed=7, max_watermark_skew=1.0
        )
        engine.ingest(feed)
        engine.samplers[0].compact(feed.timestamps[-1] + 500.0)
        with pytest.raises(WatermarkSkewError):
            engine.sample(now=feed.timestamps[-1] + 600.0)

    def test_kinds_without_clocks_never_skew(self):
        a = ShardedSamplerEngine(
            KIND_CONFIGS["f0"], shards=2, seed=6, max_watermark_skew=0.0
        )
        b = ShardedSamplerEngine(
            KIND_CONFIGS["f0"],
            shards=2,
            seed=6,
            partitioner=a.partitioner,
            max_watermark_skew=0.0,
        )
        a.ingest(np.arange(64))
        b.ingest(np.arange(64))
        a.merge(b)  # watermark() is None everywhere: nothing to compare

    def test_engine_validates_knobs(self):
        with pytest.raises(ValueError, match="compact_every"):
            ShardedSamplerEngine(self.CFG, shards=1, compact_every=0)
        with pytest.raises(ValueError, match="max_watermark_skew"):
            ShardedSamplerEngine(self.CFG, shards=1, max_watermark_skew=-1.0)


class TestBoundedMeasureLifecycle:
    """The 'bounded' kind joined the full lifecycle in this refactor:
    batch ingestion, snapshot/restore, and shared-seed merging."""

    def test_batch_matches_scalar(self):
        items = np.asarray(zipf_stream(64, 800, alpha=1.2, seed=30).items)
        a = build_sampler({**KIND_CONFIGS["bounded"], "seed": 31})
        b = build_sampler({**KIND_CONFIGS["bounded"], "seed": 31})
        # Explicit scalar loop: extend() now delegates to update_batch,
        # so it can no longer serve as the scalar reference here.
        for item in items.tolist():
            a.update(item)
        b.update_batch(items)
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())
        assert a.position == b.position == 800

    def test_merge_requires_matching_layout(self):
        a = build_sampler({**KIND_CONFIGS["bounded"], "seed": 32})
        other = build_sampler(
            {"kind": "bounded", "measure": {"name": "geman-mcclure"}, "n": 64,
             "seed": 32}
        )
        with pytest.raises(ValueError, match="measures differ"):
            a.merge(other)

    def test_sharded_bounded_engine_samples(self):
        stream = zipf_stream(64, 1500, alpha=1.1, seed=33)
        engine = ShardedSamplerEngine(
            KIND_CONFIGS["bounded"], shards=4, seed=34
        )
        engine.ingest(stream.items)
        assert engine.position == 1500
        res = engine.sample()
        assert res.is_item or res.is_fail

    def test_merge_keeps_oracle_global_min(self):
        items = np.asarray(zipf_stream(64, 600, alpha=1.0, seed=35).items)
        half_a = items[items % 2 == 0]
        half_b = items[items % 2 == 1]
        a = build_sampler({**KIND_CONFIGS["bounded"], "seed": 36})
        b = build_sampler({**KIND_CONFIGS["bounded"], "seed": 36})
        single = build_sampler({**KIND_CONFIGS["bounded"], "seed": 36})
        a.update_batch(half_a)
        b.update_batch(half_b)
        single.update_batch(np.concatenate([half_a, half_b]))
        a.merge(b)
        for merged_rep, single_rep in zip(a._samplers, single._samplers):
            assert merged_rep._min_item == single_rep._min_item
            assert merged_rep._count == single_rep._count


class TestMergedCompactedShards:
    def test_merge_with_one_compacted_empty_shard_is_exact(self):
        """A shard whose content fully expired and was compacted away
        contributes nothing; the merged sampler must still answer from
        the live shard's window."""
        feed = _feed(seed=40)
        cfg = {**KIND_CONFIGS["tw_g"], "instances": 32}
        a = build_sampler({**cfg, "seed": 41})
        b = build_sampler({**cfg, "seed": 42})
        # a saw only ancient traffic; b is live.
        a.update_batch(feed.items, feed.timestamps)
        live_start = feed.timestamps[-1] + 10_000.0
        a.compact(live_start)
        assert a.generation_count == 0
        b.update_batch(feed.items, feed.timestamps + live_start)
        merged = copy.deepcopy(a)
        merged.merge(b)
        res = merged.sample()
        assert not res.is_empty  # the live window is visible post-merge
        assert merged.position == 2 * len(feed)
        assert merged.watermark() == b.watermark()
