"""Tests for multi-pass strict turnstile samplers (Theorem 1.5, App. D)."""

import numpy as np
import pytest

from helpers import assert_matches_distribution
from repro.core import (
    MultipassL1Sampler,
    MultipassLinfEstimator,
    MultipassLpSampler,
    StrictTurnstileF0Sampler,
)
from repro.stats import f0_target, lp_target
from repro.streams import TurnstileStream, strict_turnstile_stream

# Fixed strict turnstile stream with known final frequencies.
TS = strict_turnstile_stream(12, 150, delete_fraction=0.35, max_delta=4, seed=11)
FINAL = TS.frequencies()


class TestMultipassL1:
    def test_distribution_is_l1(self):
        target = lp_target(FINAL, 1.0)

        def run(seed):
            return MultipassL1Sampler(TS, n=12, gamma=0.5, seed=seed).sample()

        assert_matches_distribution(run, target, trials=3000)

    def test_pass_count_scales_with_gamma(self):
        fine = MultipassL1Sampler(TS, n=12, gamma=0.25, seed=0)
        fine.sample()
        coarse = MultipassL1Sampler(TS, n=12, gamma=1.0, seed=0)
        coarse.sample()
        assert coarse.passes_used <= fine.passes_used

    def test_empty_stream(self):
        empty = TurnstileStream([(0, 3), (0, -3)], n=4)
        s = MultipassL1Sampler(empty, n=4, gamma=0.5, seed=0)
        assert s.sample().is_empty

    def test_validates_gamma(self):
        with pytest.raises(ValueError):
            MultipassL1Sampler(TS, n=12, gamma=0.0)


class TestMultipassLinf:
    @pytest.mark.parametrize("p", [1.5, 2.0])
    def test_bound_certified(self, p):
        est = MultipassLinfEstimator(TS, n=12, p=p, gamma=0.5)
        z = est.estimate()
        linf = int(FINAL.max())
        f1 = int(FINAL.sum())
        theta = f1 / 12 ** (1.0 - 1.0 / p)
        assert z >= linf - 1e-9
        assert z <= max(linf, theta) + 1e-9

    def test_p_one_trivial(self):
        est = MultipassLinfEstimator(TS, n=12, p=1.0, gamma=0.5)
        assert est.estimate() == 1.0

    def test_rejects_p_below_one(self):
        with pytest.raises(ValueError):
            MultipassLinfEstimator(TS, n=12, p=0.5)


class TestMultipassLp:
    def test_l2_distribution(self):
        target = lp_target(FINAL, 2.0)

        def run(seed):
            s = MultipassLpSampler(TS, n=12, p=2.0, gamma=0.5, seed=seed)
            return s.sample()

        assert_matches_distribution(run, target, trials=2000, max_fail_rate=0.2)

    def test_pass_budget_constant_in_stream(self):
        s = MultipassLpSampler(TS, n=12, p=2.0, gamma=0.5, seed=0)
        s.sample()
        # O(1/γ) passes: normalizer + parallel L1 descent + frequency pass.
        assert s.passes_used <= 10

    def test_empty_stream(self):
        empty = TurnstileStream([(2, 5), (2, -5)], n=4)
        s = MultipassLpSampler(empty, n=4, p=2.0, seed=0)
        assert s.sample().is_empty

    def test_rejects_p_below_one(self):
        with pytest.raises(ValueError):
            MultipassLpSampler(TS, n=12, p=0.5)


class TestStrictTurnstileF0:
    def test_sparse_regime_via_recovery(self):
        ups = [(3, 5), (9, 2), (9, -2), (40, 1), (7, 4), (7, -4)]
        ts = TurnstileStream(ups, n=64)
        target = f0_target(ts.frequencies())

        def run(seed):
            s = StrictTurnstileF0Sampler(64, seed=seed)
            s.extend(ts)
            return s.sample()

        report = assert_matches_distribution(run, target, trials=2000)
        assert report.fail_rate == 0.0  # recovery succeeds deterministically

    def test_dense_regime(self):
        n = 36  # sparsity budget 2√n = 14 < 20 alive items
        ups = [(i, 1 + i % 3) for i in range(20)]
        ts = TurnstileStream(ups, n=n)
        target = f0_target(ts.frequencies())

        def run(seed):
            s = StrictTurnstileF0Sampler(n, delta=0.05, seed=seed)
            s.extend(ts)
            return s.sample()

        assert_matches_distribution(run, target, trials=2000, max_fail_rate=0.1)

    def test_deletions_respected(self):
        """Deleted coordinates must never be sampled."""
        ups = [(1, 3), (2, 2), (2, -2), (5, 1)]
        ts = TurnstileStream(ups, n=25)
        for seed in range(100):
            s = StrictTurnstileF0Sampler(25, seed=seed)
            s.extend(ts)
            res = s.sample()
            assert res.is_item
            assert res.item in (1, 5)

    def test_empty(self):
        s = StrictTurnstileF0Sampler(16, seed=0)
        s.update(3, 2)
        s.update(3, -2)
        assert s.sample().is_empty
