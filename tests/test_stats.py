"""Tests for the statistics harness (repro.stats)."""

import numpy as np
import pytest

from repro.core import LpMeasure, SampleResult
from repro.core.matrix_sampler import RowL1Measure
from repro.stats import (
    bernoulli_accumulation,
    chi_square_gof,
    distinguishing_attack,
    evaluate,
    f0_target,
    g_target,
    joint_tv_upper,
    lp_target,
    portioned_drift,
    row_target,
    total_variation,
)
from repro.stats.distance import expected_tv_noise
from repro.stats.harness import collect_outcomes, empirical_distribution


class TestTargets:
    def test_lp_target(self):
        t = lp_target(np.array([1, 2]), 2.0)
        assert t.tolist() == [0.2, 0.8]

    def test_g_target_matches_measure(self):
        t = g_target(np.array([2, 0, 2]), LpMeasure(1.0))
        assert t.tolist() == [0.5, 0.0, 0.5]

    def test_f0_target(self):
        t = f0_target(np.array([5, 0, 1]))
        assert t.tolist() == [0.5, 0.0, 0.5]

    def test_row_target(self):
        t = row_target(np.array([[1, 1], [2, 0]]), RowL1Measure())
        assert t.tolist() == [0.5, 0.5]

    def test_zero_vector_raises(self):
        with pytest.raises(ValueError):
            lp_target(np.zeros(3), 2.0)
        with pytest.raises(ValueError):
            f0_target(np.zeros(3))


class TestDistances:
    def test_tv_basic(self):
        assert total_variation(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0
        assert total_variation(np.array([0.5, 0.5]), np.array([0.5, 0.5])) == 0.0

    def test_tv_shape_mismatch(self):
        with pytest.raises(ValueError):
            total_variation(np.ones(2), np.ones(3))

    def test_chi_square_accepts_exact_counts(self):
        probs = np.array([0.25, 0.25, 0.5])
        counts = probs * 4000
        stat, p = chi_square_gof(counts, probs)
        assert stat == pytest.approx(0.0, abs=1e-9)
        assert p == pytest.approx(1.0)

    def test_chi_square_rejects_wrong_distribution(self):
        probs = np.array([0.5, 0.5])
        counts = np.array([900.0, 100.0])
        __, p = chi_square_gof(counts, probs)
        assert p < 1e-6

    def test_chi_square_pools_small_cells(self):
        probs = np.array([0.989] + [0.001] * 11)
        counts = np.concatenate([[989.0], np.ones(11)])
        stat, p = chi_square_gof(counts, probs)
        assert np.isfinite(stat)
        assert p > 0.1

    def test_noise_floor_shrinks(self):
        assert expected_tv_noise(10, 10_000) < expected_tv_noise(10, 100)


class TestHarness:
    def test_collect_and_empirical(self):
        def run(seed):
            return SampleResult.of(seed % 3)

        counts, fails, empties = collect_outcomes(run, trials=300)
        assert fails == 0 and empties == 0
        dist = empirical_distribution(counts, 3)
        assert dist.sum() == pytest.approx(1.0)
        assert dist.tolist() == pytest.approx([1 / 3] * 3)

    def test_evaluate_on_exact_sampler(self):
        target = np.array([0.25, 0.75])
        rng = np.random.default_rng(0)

        def run(seed):
            return SampleResult.of(int(rng.random() < 0.75))

        report = evaluate(run, target, trials=4000)
        assert report.chi2_pvalue > 1e-3
        assert report.tv < 3 * report.tv_noise_floor
        assert report.success_rate == 1.0

    def test_evaluate_tracks_failures(self):
        def run(seed):
            if seed % 2:
                return SampleResult.fail()
            return SampleResult.of(0)

        report = evaluate(run, np.array([1.0]), trials=100)
        assert report.fail_rate == pytest.approx(0.5)

    def test_evaluate_all_fail(self):
        report = evaluate(lambda s: SampleResult.fail(), np.array([1.0]), trials=10)
        assert report.successes == 0
        assert report.tv == 1.0

    def test_report_row_renders(self):
        report = evaluate(lambda s: SampleResult.of(0), np.array([1.0]), trials=10)
        assert "TV=" in report.row("label")


class TestAccumulation:
    def test_bernoulli_growth(self):
        assert bernoulli_accumulation(0.0, 100) == 0.0
        assert bernoulli_accumulation(0.01, 1) == pytest.approx(0.01)
        assert bernoulli_accumulation(0.01, 200) > 0.8

    def test_joint_upper_caps(self):
        assert joint_tv_upper(0.3, 10) == 1.0
        assert joint_tv_upper(0.01, 5) == pytest.approx(0.05)

    def test_portioned_drift(self):
        out = np.array([0.55, 0.45])
        tgt = np.array([0.5, 0.5])
        d = portioned_drift(out, tgt, portions=10)
        assert d["per_portion_tv"] == pytest.approx(0.05)
        assert d["joint_lower"] <= d["joint_upper"]

    def test_validates_gamma(self):
        with pytest.raises(ValueError):
            bernoulli_accumulation(-0.1, 5)


class TestAttack:
    def test_planted_bias_detected(self):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(1)

        def run_unbiased(seed):
            return SampleResult.of(int(rng_a.integers(0, 10)))

        def run_biased(seed):
            if rng_b.random() < 0.3:
                return SampleResult.of(0)
            return SampleResult.of(int(rng_b.integers(0, 10)))

        report = distinguishing_attack(
            run_unbiased, run_biased, bias_items=[0],
            samples_per_batch=200, batches=30, seed=2,
        )
        assert report.advantage > 0.8
        assert report.mean_statistic_biased > report.mean_statistic_unbiased

    def test_no_bias_no_advantage(self):
        rng = np.random.default_rng(3)

        def run(seed):
            return SampleResult.of(int(rng.integers(0, 10)))

        report = distinguishing_attack(
            run, run, bias_items=[0], samples_per_batch=100, batches=30, seed=4
        )
        assert abs(report.advantage) < 0.4
