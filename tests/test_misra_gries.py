"""Tests for the Misra–Gries summary (Theorem 3.2 guarantees)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches import MisraGries
from repro.streams import zipf_stream


class TestMisraGriesGuarantees:
    @given(st.lists(st.integers(0, 9), min_size=1, max_size=200), st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_estimate_sandwich(self, items, capacity):
        """f_i − m/(k+1) ≤ est(i) ≤ f_i for every i (the MG invariant)."""
        mg = MisraGries(capacity)
        mg.extend(items)
        freq = np.bincount(items, minlength=10)
        bound = len(items) / (capacity + 1)
        for i in range(10):
            est = mg.estimate(i)
            assert est <= freq[i]
            assert est >= freq[i] - bound - 1e-9

    @given(st.lists(st.integers(0, 9), min_size=1, max_size=200), st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_linf_upper_bound_certified(self, items, capacity):
        """‖f‖∞ ≤ Z ≤ ‖f‖∞ + m/(k+1) — the Theorem 3.4 normalizer."""
        mg = MisraGries(capacity)
        mg.extend(items)
        linf = int(np.bincount(items, minlength=10).max())
        z = mg.linf_upper_bound()
        assert z >= linf - 1e-9
        assert z <= linf + len(items) / (capacity + 1) + 1e-9

    def test_heavy_hitters_found(self):
        stream = zipf_stream(1000, 5000, alpha=1.5, seed=0)
        mg = MisraGries(50)
        mg.extend(stream)
        freq = stream.frequencies()
        threshold = 2 * len(stream) / 51
        hh = mg.heavy_hitters(0)
        for i in np.flatnonzero(freq > threshold):
            assert int(i) in hh

    def test_batched_count_update(self):
        mg = MisraGries(2)
        mg.update(0, count=10)
        mg.update(1, count=5)
        mg.update(2, count=3)  # forces decrements
        assert mg.stream_length == 18
        assert mg.estimate(0) >= 10 - 18 / 3 - 1e-9

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError):
            MisraGries(2).update(0, count=0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            MisraGries(0)

    def test_items_snapshot_is_copy(self):
        mg = MisraGries(4)
        mg.extend([1, 1, 2])
        snap = mg.items()
        snap[1] = 999
        assert mg.estimate(1) == 2

    def test_empty_summary(self):
        mg = MisraGries(3)
        assert mg.estimate(0) == 0
        assert mg.linf_upper_bound() == 0.0
        assert mg.error_bound() == 0.0
