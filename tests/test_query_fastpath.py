"""The query fast path: merged-view cache correctness (cached ≡ fresh,
bitwise), mutation-epoch bookkeeping, invalidation under every mutating
lifecycle hook, batched ``sample_many`` parity and distribution, and the
vectorized windowed-F0 LRU kernel."""

import numpy as np
import pytest

from helpers import assert_matches_distribution
from repro.core.f0_sampler import TrulyPerfectF0Sampler
from repro.core.g_sampler import TrulyPerfectGSampler
from repro.core.lp_sampler import TrulyPerfectLpSampler
from repro.core.measures import HuberMeasure
from repro.engine import ShardedSamplerEngine, build_sampler
from repro.engine.state import state_to_bytes
from repro.sliding_window import (
    SlidingWindowF0Sampler,
    SlidingWindowGSampler,
    SlidingWindowLpSampler,
)
from repro.stats import chi_square_gof, g_target, lp_target
from repro.streams import with_arrivals, zipf_stream
from repro.windows import (
    TimeWindowF0Sampler,
    TimeWindowGSampler,
    TimeWindowLpSampler,
    WindowBank,
)

N = 64
STREAM = zipf_stream(N, 3000, alpha=1.2, seed=1)
ITEMS = np.asarray(STREAM.items)
TIMED = with_arrivals(STREAM, process="uniform", rate=40.0, seed=2)
TS = np.asarray(TIMED.timestamps)

#: Mergeable registry kinds the engine can serve — the parametrization
#: base for cached-vs-fresh equality.  (Count-based sliding windows are
#: mergeable=False and cannot sit behind the engine at all.)
ENGINE_CONFIGS = {
    "g": {"kind": "g", "measure": {"name": "huber"}, "instances": 24},
    "lp": {"kind": "lp", "p": 2.0, "n": N, "instances": 24},
    "f0": {"kind": "f0", "n": N},
    "oracle-f0": {"kind": "oracle-f0", "n": N},
    "algorithm5-f0": {"kind": "algorithm5-f0", "n": N},
    "pool": {"kind": "pool", "instances": 8},
    "bounded": {"kind": "bounded", "measure": {"name": "tukey"}, "n": N},
    "tw_g": {"kind": "tw_g", "measure": {"name": "huber"}, "horizon": 20.0,
             "instances": 16},
    "tw_lp": {"kind": "tw_lp", "p": 2.0, "horizon": 20.0, "instances": 16},
    "tw_f0": {"kind": "tw_f0", "n": N, "horizon": 20.0},
    "window_bank": {"kind": "window_bank", "resolutions": [10.0, 40.0],
                    "p": 2.0, "n": N, "instances": 8},
}
TIMED_KINDS = {"tw_g", "tw_lp", "tw_f0", "window_bank"}
#: ``pool`` has no sample() hook — exercised for caching/epochs only.
SAMPLING_KINDS = sorted(set(ENGINE_CONFIGS) - {"pool"})


def _engines(kind, shards=4, seed=3, **kwargs):
    cfg = ENGINE_CONFIGS[kind]
    return (
        ShardedSamplerEngine(cfg, shards=shards, seed=seed, **kwargs),
        ShardedSamplerEngine(cfg, shards=shards, seed=seed, **kwargs),
    )


def _feed(engine, kind, lo=0, hi=None):
    sl = slice(lo, hi)
    if kind in TIMED_KINDS:
        engine.ingest(ITEMS[sl], timestamps=TS[sl])
    else:
        engine.ingest(ITEMS[sl])


def _sample(engine_or_fold, kind, fresh=False):
    kwargs = {"horizon": 10.0} if kind == "window_bank" else {}
    if fresh:
        fold = engine_or_fold.merged_sampler()
        if kind == "window_bank":
            return fold.sample(10.0)
        return fold.sample()
    return engine_or_fold.sample(**kwargs)


class TestCachedEqualsFresh:
    """The acceptance-criteria core: for identical seeds, the cached
    path's first query after any (re)fold is bitwise identical to a
    fresh fold-per-query answer — across every mergeable kind."""

    @pytest.mark.parametrize("kind", SAMPLING_KINDS)
    def test_first_query_bitwise_equal(self, kind):
        cached, fresh = _engines(kind)
        _feed(cached, kind)
        _feed(fresh, kind)
        assert _sample(cached, kind) == _sample(fresh, kind, fresh=True)

    @pytest.mark.parametrize("kind", SAMPLING_KINDS)
    def test_equal_after_each_incremental_ingest(self, kind):
        cached, fresh = _engines(kind)
        for lo, hi in ((0, 1000), (1000, 2000), (2000, 3000)):
            _feed(cached, kind, lo, hi)
            _feed(fresh, kind, lo, hi)
            assert _sample(cached, kind) == _sample(fresh, kind, fresh=True), (
                kind, lo,
            )

    def test_cache_disabled_replays_legacy_coins(self):
        """query_cache=False restores the PR 1 behavior: repeated
        queries without ingestion re-fold and replay the same coins."""
        engine = ShardedSamplerEngine(
            ENGINE_CONFIGS["g"], shards=4, seed=3, query_cache=False
        )
        engine.ingest(ITEMS)
        assert engine.sample() == engine.sample()
        assert engine.cache_info()["enabled"] is False
        assert engine.cache_info()["hits"] == 0

    def test_cached_queries_draw_fresh_coins_deterministically(self):
        """With the cache on, the query sequence is deterministic in the
        seed but consecutive hits advance the fold's private RNG — the
        acceptance pattern varies across draws instead of replaying.
        (The *positional* sample inside each pool instance is frozen
        between ingests — that is the construction, not the cache.)"""
        cfg = {"kind": "lp", "p": 2.0, "n": N, "instances": 4}
        a = ShardedSamplerEngine(cfg, shards=4, seed=9)
        b = ShardedSamplerEngine(cfg, shards=4, seed=9)
        a.ingest(ITEMS)
        b.ingest(ITEMS)
        seq_a = [a.sample() for __ in range(24)]
        seq_b = [b.sample() for __ in range(24)]
        assert seq_a == seq_b  # deterministic across identical engines
        # Fresh coins per query: with 4 low-acceptance instances the
        # FAIL/ITEM pattern must vary across the 24 draws.
        assert len({r.outcome for r in seq_a}) > 1 or len(
            {r.item for r in seq_a}
        ) > 1


class TestMutationEpochs:
    def test_epochs_monotone_under_random_ops(self):
        """Property: whatever mix of lifecycle operations runs, no
        shard's epoch ever decreases."""
        engine = ShardedSamplerEngine(ENGINE_CONFIGS["tw_g"], shards=4, seed=1)
        rng = np.random.default_rng(5)
        prev = engine.mutation_epochs()
        cursor = 0
        for op in rng.integers(0, 4, size=40).tolist():
            if op == 0:
                step = int(rng.integers(1, 200))
                engine.ingest(
                    ITEMS[cursor:cursor + step],
                    timestamps=TS[cursor:cursor + step],
                )
                cursor += step
            elif op == 1:
                engine.sample()
            elif op == 2:
                engine.compact()
            else:
                engine.invalidate_cache()
            now = engine.mutation_epochs()
            assert all(b >= a for a, b in zip(prev, now))
            prev = now

    def test_ingest_bumps_only_touched_shards(self):
        engine = ShardedSamplerEngine(ENGINE_CONFIGS["g"], shards=4, seed=3)
        before = engine.mutation_epochs()
        item = 17
        engine.update(item)
        after = engine.mutation_epochs()
        bumped = [i for i, (a, b) in enumerate(zip(before, after)) if b > a]
        assert bumped == [engine.shard_of(item)]

    def test_cache_hit_and_reuse(self):
        engine, __ = _engines("g")
        engine.ingest(ITEMS)
        engine.sample()
        h0 = engine.cache_info()["hits"]
        engine.sample()
        engine.sample()
        assert engine.cache_info()["hits"] == h0 + 2


class TestInvalidation:
    """Every mutating lifecycle hook must force a re-fold whose first
    query matches the fresh-fold reference."""

    @pytest.mark.parametrize("kind", ["g", "f0", "tw_g", "window_bank"])
    def test_ingest_invalidates(self, kind):
        cached, fresh = _engines(kind)
        _feed(cached, kind, 0, 2000)
        _feed(fresh, kind, 0, 2000)
        _sample(cached, kind)  # warm the cache
        _feed(cached, kind, 2000, None)
        _feed(fresh, kind, 2000, None)
        assert _sample(cached, kind) == _sample(fresh, kind, fresh=True)

    def test_compact_that_drops_state_invalidates(self):
        kind = "tw_g"
        cached, fresh = _engines(kind)
        _feed(cached, kind)
        _feed(fresh, kind)
        _sample(cached, kind)
        later = cached.watermark() + 10_000.0
        before = cached.mutation_epochs()
        assert cached.compact(later) > 0
        assert any(
            b > a for a, b in zip(before, cached.mutation_epochs())
        )
        fresh.compact(later)
        assert cached.sample().is_empty
        assert fresh.merged_sampler().sample().is_empty

    def test_now_less_query_after_watermark_advance_uses_live_clock(self):
        """Regression: a query at now=T advances shard watermarks
        without dropping state (freed=0, epochs unchanged); a following
        query with `now` omitted must still evaluate the window at the
        *live* clock T, not at the cached fold's older snapshot —
        engine-side pinning substitutes the watermark."""
        kind = "tw_g"
        cached, fresh = _engines(kind)
        _feed(cached, kind)
        _feed(fresh, kind)
        later = cached.watermark() + 15.0  # expires part of the window
        r_cached = cached.sample(now=later)
        r_fresh = fresh.sample(now=later)
        assert r_cached == r_fresh
        # `now` omitted: both must answer at the advanced clock.
        follow_cached = cached.sample()
        fresh_fold = fresh.merged_sampler()
        follow_fresh = fresh_fold.sample(now=fresh.watermark())
        assert follow_cached == follow_fresh
        # And the cached fold must have been reusable (no invalidation
        # was needed to get the right answer).
        assert cached.cache_info()["hits"] >= 1

    def test_noop_compact_keeps_cache(self):
        engine, __ = _engines("g")
        engine.ingest(ITEMS)
        engine.sample()
        before = engine.mutation_epochs()
        assert engine.compact() == 0
        assert engine.mutation_epochs() == before
        h0 = engine.cache_info()["hits"]
        engine.sample()
        assert engine.cache_info()["hits"] == h0 + 1

    def test_snapshot_restore_invalidates(self):
        cached, fresh = _engines("g")
        cached.ingest(ITEMS)
        fresh.ingest(ITEMS)
        cached.sample()  # cache now holds the 3000-item fold
        snap = state_to_bytes(cached.snapshot())
        half_cached, half_fresh = _engines("g")
        half_cached.ingest(ITEMS[:500])
        half_cached.sample()
        from repro.engine.state import state_from_bytes

        half_cached.restore(state_from_bytes(snap))
        half_fresh.ingest(ITEMS)
        assert half_cached.sample() == half_fresh.merged_sampler().sample()

    def test_cross_engine_merge_invalidates(self):
        a_cached, a_fresh = _engines("g")
        b = ShardedSamplerEngine(
            ENGINE_CONFIGS["g"],
            shards=4,
            seed=99,
            partitioner=a_cached.partitioner,
        )
        a_cached.ingest(ITEMS[:1500])
        a_fresh.ingest(ITEMS[:1500])
        b.ingest(ITEMS[1500:])
        a_cached.sample()  # warm
        b_twin = ShardedSamplerEngine(
            ENGINE_CONFIGS["g"],
            shards=4,
            seed=99,
            partitioner=a_fresh.partitioner,
        )
        b_twin.ingest(ITEMS[1500:])
        a_cached.merge(b)
        a_fresh.merge(b_twin)
        assert a_cached.sample() == a_fresh.merged_sampler().sample()

    def test_direct_shard_mutation_needs_invalidate_cache(self):
        engine, fresh = _engines("g")
        engine.ingest(ITEMS)
        fresh.ingest(ITEMS)
        engine.sample()
        engine.samplers[0].update_batch(np.array([1, 2, 3]))
        fresh.samplers[0].update_batch(np.array([1, 2, 3]))
        engine.invalidate_cache()
        assert engine.sample() == fresh.merged_sampler().sample()

    def test_partial_rebuild_matches_fresh(self):
        """Scalar updates dirty one shard; the prefix-chain rebase must
        still reproduce the from-scratch fold bitwise."""
        cached, fresh = _engines("g", shards=4)
        cached.ingest(ITEMS)
        fresh.ingest(ITEMS)
        assert _sample(cached, "g") == _sample(fresh, "g", fresh=True)
        for item in (5, 9, 13, 2, 63):
            cached.update(item)
            fresh.update(item)
            assert cached.sample() == fresh.merged_sampler().sample(), item
        assert cached.cache_info()["partial"] >= 1


class TestSampleMany:
    SAMPLER_PAIRS = [
        ("g", lambda: TrulyPerfectGSampler(HuberMeasure(), instances=24, seed=5)),
        ("lp", lambda: TrulyPerfectLpSampler(2.0, N, instances=24, seed=5)),
        ("f0", lambda: TrulyPerfectF0Sampler(N, seed=5)),
        ("sw-g", lambda: SlidingWindowGSampler(
            HuberMeasure(), window=500, instances=24, seed=5)),
        ("sw-lp", lambda: SlidingWindowLpSampler(
            2.0, window=500, instances=24, seed=5)),
        ("sw-f0", lambda: SlidingWindowF0Sampler(N, window=500, seed=5)),
    ]
    TIMED_PAIRS = [
        ("tw-g", lambda: TimeWindowGSampler(
            HuberMeasure(), horizon=20.0, instances=24, seed=5)),
        ("tw-lp", lambda: TimeWindowLpSampler(2.0, horizon=20.0,
                                              instances=24, seed=5)),
        ("tw-f0", lambda: TimeWindowF0Sampler(N, horizon=20.0, seed=5)),
    ]

    @pytest.mark.parametrize("name,mk", SAMPLER_PAIRS)
    def test_bitwise_matches_sequential(self, name, mk):
        a, b = mk(), mk()
        a.update_batch(ITEMS)
        b.update_batch(ITEMS)
        assert a.sample_many(40) == [b.sample() for __ in range(40)]

    @pytest.mark.parametrize("name,mk", TIMED_PAIRS)
    def test_bitwise_matches_sequential_timed(self, name, mk):
        a, b = mk(), mk()
        a.update_batch(ITEMS, TS)
        b.update_batch(ITEMS, TS)
        assert a.sample_many(40) == [b.sample() for __ in range(40)]

    def test_engine_sample_many_matches_sequential(self):
        a, b = _engines("g", shards=8, seed=7)
        a.ingest(ITEMS)
        b.ingest(ITEMS)
        assert a.sample_many(30) == [b.sample() for __ in range(30)]

    def test_bank_sample_many_matches_sequential(self):
        mk = lambda: WindowBank((10.0, 40.0), p=2.0, n=N, instances=16, seed=4)
        a, b = mk(), mk()
        a.update_batch(ITEMS, TS)
        b.update_batch(ITEMS, TS)
        assert a.sample_many(20, 10.0) == [b.sample(10.0) for __ in range(20)]
        assert a.sample_distinct_many(20, 40.0) == [
            b.sample_distinct(40.0) for __ in range(20)
        ]

    def test_zero_and_negative_draws(self):
        engine, __ = _engines("g")
        engine.ingest(ITEMS[:100])
        assert engine.sample_many(0) == []
        with pytest.raises(ValueError, match="non-negative"):
            engine.sample_many(-1)
        sampler = build_sampler({**ENGINE_CONFIGS["g"], "seed": 1})
        with pytest.raises(ValueError, match="non-negative"):
            sampler.sample_many(-1)

    def test_empty_stream_gives_empty_results(self):
        sampler = build_sampler({**ENGINE_CONFIGS["g"], "seed": 1})
        results = sampler.sample_many(5)
        assert len(results) == 5 and all(r.is_empty for r in results)

    def test_sample_many_distribution_exact(self):
        """Across independent engines, draws taken *through
        sample_many* must follow the exact L1 target — the
        conditional-distribution guarantee survives batching.  (One
        engine's repeated queries share its frozen positional samples —
        independence comes from independent seeds, as everywhere.)"""
        stream = zipf_stream(16, 1200, alpha=1.2, seed=21)
        target = lp_target(stream.frequencies(), 1.0)
        items = np.asarray(stream.items)
        counts = {}
        successes = 0
        for seed in range(600):
            engine = ShardedSamplerEngine(
                {"kind": "g", "measure": {"name": "lp", "p": 1.0},
                 "instances": 24},
                shards=4,
                seed=seed,
            )
            engine.ingest(items)
            # Draw 3 and keep the last: exercises coin rows past the
            # first, i.e. the genuinely batched part of the block.
            res = engine.sample_many(3)[-1]
            if res.is_item:
                counts[res.item] = counts.get(res.item, 0) + 1
                successes += 1
        assert successes > 500
        __, pvalue = chi_square_gof(
            np.array([counts.get(i, 0) for i in range(16)]), target
        )
        assert pvalue > 1e-3, (pvalue, counts)

    def test_sample_many_distribution_via_harness(self):
        """Per-seed single draws through sample_many(1) must match the
        same target the scalar harness checks."""
        stream = zipf_stream(16, 800, alpha=1.2, seed=22)
        target = lp_target(stream.frequencies(), 1.0)
        items = np.asarray(stream.items)

        def run(seed):
            sampler = TrulyPerfectGSampler(
                HuberMeasure(), instances=24, seed=seed
            )
            sampler.update_batch(items)
            return sampler.sample_many(1)[0]

        assert_matches_distribution(
            run,
            g_target(stream.frequencies(), HuberMeasure()),
            trials=900,
            max_fail_rate=0.5,
        )


class TestLruKernel:
    """The vectorized last-occurrence/eviction-horizon kernel must be
    bitwise indistinguishable from the scalar LRU replay."""

    @pytest.mark.parametrize("n,window,chunk", [
        (16, 10, 7), (16, 10, 173), (64, 500, 173), (9, 4, 1), (25, 30, 64),
    ])
    def test_sw_f0_batch_matches_scalar(self, n, window, chunk):
        arr = np.asarray(zipf_stream(n, 1500, alpha=1.1, seed=7).items)
        a = SlidingWindowF0Sampler(n, window=window, seed=9)
        b = SlidingWindowF0Sampler(n, window=window, seed=9)
        for item in arr.tolist():
            a.update(item)
        for start in range(0, arr.size, chunk):
            b.update_batch(arr[start:start + chunk])
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())
        assert list(a._recent.items()) == list(b._recent.items())
        assert a.sample() == b.sample()

    @pytest.mark.parametrize("n,chunk", [(16, 149), (64, 149), (16, 1)])
    def test_tw_f0_batch_matches_scalar(self, n, chunk):
        arr = np.asarray(zipf_stream(n, 1500, alpha=1.1, seed=8).items)
        ts = np.sort(np.random.default_rng(5).uniform(0, 50, size=1500))
        ts[100:140] = ts[100]  # timestamp ties must not break recency order
        ts = np.sort(ts)
        a = TimeWindowF0Sampler(n, horizon=5.0, seed=9)
        b = TimeWindowF0Sampler(n, horizon=5.0, seed=9)
        for item, when in zip(arr.tolist(), ts.tolist()):
            a.update(item, when)
        for start in range(0, arr.size, chunk):
            b.update_batch(arr[start:start + chunk], ts[start:start + chunk])
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())
        assert a.sample() == b.sample()

    def test_bounds_rejection_leaves_state_untouched(self):
        sampler = SlidingWindowF0Sampler(16, window=10, seed=0)
        sampler.update_batch(np.arange(8))
        snap = state_to_bytes(sampler.snapshot())
        with pytest.raises(ValueError, match="outside universe"):
            sampler.update_batch(np.array([3, 99]))
        with pytest.raises(ValueError, match="outside universe"):
            sampler.update_batch(np.array([-1, 3]))
        assert state_to_bytes(sampler.snapshot()) == snap


class TestExtendDelegation:
    def test_extend_bitwise_equals_batch(self):
        a = TrulyPerfectGSampler(HuberMeasure(), instances=24, seed=3)
        b = TrulyPerfectGSampler(HuberMeasure(), instances=24, seed=3)
        a.extend(ITEMS.tolist())
        b.update_batch(ITEMS)
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())

    def test_extend_accepts_generator(self):
        sampler = TrulyPerfectF0Sampler(N, seed=3)
        sampler.extend(int(x) for x in ITEMS[:200])
        assert sampler.position == 200

    def test_timed_extend_bitwise_equals_batch(self):
        a = TimeWindowGSampler(HuberMeasure(), horizon=20.0, instances=8, seed=2)
        b = TimeWindowGSampler(HuberMeasure(), horizon=20.0, instances=8, seed=2)
        a.extend(zip(ITEMS[:500].tolist(), TS[:500].tolist()))
        b.update_batch(ITEMS[:500], TS[:500])
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())

    def test_timed_extend_takes_timestamped_stream_fast_path(self):
        """A TimestampedStream short-circuits to its arrays — no
        per-pair Python loop — with identical resulting state."""
        a = TimeWindowGSampler(HuberMeasure(), horizon=20.0, instances=8, seed=2)
        b = TimeWindowGSampler(HuberMeasure(), horizon=20.0, instances=8, seed=2)
        a.extend(TIMED)
        b.update_batch(ITEMS, TS)
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())

    def test_bank_extend_bitwise_equals_batch(self):
        mk = lambda: WindowBank((10.0, 40.0), p=2.0, n=N, instances=8, seed=4)
        a, b = mk(), mk()
        a.extend(zip(ITEMS[:500].tolist(), TS[:500].tolist()))
        b.update_batch(ITEMS[:500], TS[:500])
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())
