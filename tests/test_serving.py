"""repro.serving — concurrency, determinism, and admission tests.

The three contracts the serving layer must keep:

* **ingest determinism** — routed, worker-parallel ingest lands the
  exact engine state sequential ``engine.ingest`` would (bitwise, any
  worker count), and serialized serving mode replays a whole request
  sequence bitwise-identically to direct engine calls;
* **query-plane soundness** — lock-free readers never see torn folds,
  per-reader RNG streams are independent and reproducible, the locked
  mode preserves the single-stream coin sequence;
* **admission honesty** — backpressure and rate caps reject atomically
  (nothing half-enqueued), and flush/close drain exactly what was
  accepted.
"""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.core.types import SampleOutcome
from repro.engine import ShardedSamplerEngine, state_to_bytes
from repro.lifecycle import (
    derive_reader_rng,
    has_query_rng_hook,
    rebind_query_rngs,
    spawn_query_view,
)
from repro.serving import (
    AsyncSamplerService,
    Backpressure,
    FlushTimeout,
    RateLimited,
    SamplerService,
    ServiceClosed,
    ShardQueues,
    ShardRouter,
    TenantRateLimiter,
    TokenBucket,
)
from repro.serving.cli import main as serve_main
from repro.serving.router import RoutedBatch
from repro.streams.generators import zipf_stream
from repro.streams.timestamped import uniform_arrivals
from repro.windows import WindowBank

G_CONFIG = {"kind": "g", "measure": {"name": "huber"}, "instances": 24}
TW_CONFIG = {"kind": "tw_g", "measure": {"name": "huber"}, "horizon": 8.0,
             "instances": 16}


def make_items(m: int, seed: int = 3, n: int = 1 << 10) -> np.ndarray:
    return np.asarray(zipf_stream(n, m, alpha=1.2, seed=seed).items)


def drain_close(svc: SamplerService) -> None:
    svc.close(drain=True, timeout=10.0)


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------
class TestShardRouter:
    def test_untimed_routing_matches_engine_split(self):
        engine = ShardedSamplerEngine(G_CONFIG, shards=8, seed=5)
        router = ShardRouter(engine.partitioner)
        items = make_items(5_000)
        parts = {p.shard: p.items for p in router.route(items)}
        for shard, sub in enumerate(engine.partitioner.split(items)):
            if sub.size:
                np.testing.assert_array_equal(parts[shard], sub)
            else:
                assert shard not in parts

    def test_timed_routing_keeps_pairs_aligned(self):
        engine = ShardedSamplerEngine(TW_CONFIG, shards=4, seed=5)
        router = ShardRouter(engine.partitioner)
        items = make_items(2_000)
        ts = uniform_arrivals(items.size, 500.0)
        parts = router.route(items, ts)
        assert sum(len(p) for p in parts) == items.size
        for part in parts:
            # Every (item, timestamp) pair survives routing intact.
            sel = engine.partitioner.assign(items) == part.shard
            np.testing.assert_array_equal(part.items, items[sel])
            np.testing.assert_array_equal(part.timestamps, ts[sel])

    def test_timestamped_stream_autodetected(self):
        engine = ShardedSamplerEngine(TW_CONFIG, shards=4, seed=5)
        router = ShardRouter(engine.partitioner)

        class Timed:
            items = make_items(100)
            timestamps = uniform_arrivals(100, 50.0)

        parts = router.route(Timed())
        assert all(p.timestamps is not None for p in parts)

    def test_mismatched_timestamps_rejected(self):
        router = ShardRouter(ShardedSamplerEngine(G_CONFIG, shards=2).partitioner)
        with pytest.raises(ValueError, match="matching"):
            router.route(np.arange(10), np.zeros(9))


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=100.0, burst=50.0)
        assert bucket.try_consume(50, now=0.0) == 0.0
        wait = bucket.try_consume(10, now=0.0)
        assert wait == pytest.approx(0.1)
        assert bucket.try_consume(10, now=0.2) == 0.0  # refilled 20

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=5)

    def test_limiter_default_and_unlimited(self):
        clock = {"t": 0.0}
        limiter = TenantRateLimiter(
            {"paid": (1000.0, 1000.0)}, default=(10.0, 10.0),
            clock=lambda: clock["t"],
        )
        limiter.admit("paid", 500)
        limiter.admit("free", 10)
        with pytest.raises(RateLimited) as exc:
            limiter.admit("free", 10)
        assert exc.value.retry_after == pytest.approx(1.0)
        assert limiter.shed_count == 1
        # No default → unknown tenants are unlimited.
        open_limiter = TenantRateLimiter({"paid": (1.0, 1.0)})
        open_limiter.admit("anon", 10**6)

    def test_bucket_table_is_bounded(self):
        clock = {"t": 0.0}
        limiter = TenantRateLimiter(
            {"pinned": (1000.0, 1000.0)}, default=(100.0, 100.0),
            clock=lambda: clock["t"], max_tenants=8,
        )
        # An adversarial id stream must not grow the table unboundedly.
        for i in range(1_000):
            clock["t"] += 0.001
            limiter.admit(f"uuid-{i}", 1)
        assert len(limiter._buckets) <= 8 + 1  # cap + the pinned tenant
        # The pinned tenant's bucket survives the churn.
        limiter.admit("pinned", 500)
        assert "pinned" in limiter._buckets
        # Full (idle-refilled) buckets are evicted before drained ones:
        # give the survivors time to refill to burst, drain one, churn.
        clock["t"] += 100.0
        limiter.admit("hot", 90)  # freshly drained, everyone else full
        clock["t"] += 0.001
        limiter.admit("newcomer", 1)  # forces exactly one eviction
        assert "hot" in limiter._buckets


# ---------------------------------------------------------------------------
# Bounded queues
# ---------------------------------------------------------------------------
def _parts(shard_sizes: dict[int, int]) -> list[RoutedBatch]:
    return [
        RoutedBatch(shard, np.arange(n, dtype=np.int64), None)
        for shard, n in shard_sizes.items()
    ]


class TestShardQueues:
    def test_shed_is_atomic(self):
        queues = ShardQueues(shards=2, capacity=100)
        queues.put(_parts({0: 90}), block=False)
        with pytest.raises(Backpressure) as exc:
            queues.put(_parts({0: 20, 1: 50}), block=False)
        assert exc.value.shard == 0
        # Shard 1 must not have received its half of the rejected batch.
        assert queues.depths() == [90, 0]
        assert queues.shed_count == 1

    def test_block_times_out(self):
        queues = ShardQueues(shards=1, capacity=10)
        queues.put(_parts({0: 10}), block=True)
        t0 = time.monotonic()
        with pytest.raises(Backpressure):
            queues.put(_parts({0: 5}), block=True, timeout=0.1)
        assert time.monotonic() - t0 >= 0.09

    def test_block_wakes_on_capacity(self):
        queues = ShardQueues(shards=1, capacity=10)
        queues.put(_parts({0: 10}), block=True)
        released = []

        def consumer():
            time.sleep(0.05)
            got = queues.take([0], 0, max_items=100)
            assert got is not None
            queues.mark_applied(0, sum(len(b) for b in got[1]))
            released.append(True)

        thread = threading.Thread(target=consumer)
        thread.start()
        assert queues.put(_parts({0: 5}), block=True, timeout=5.0) == 5
        thread.join()
        assert released

    def test_flush_timeout_reports_residue(self):
        queues = ShardQueues(shards=1, capacity=100)
        queues.put(_parts({0: 7}), block=False)
        with pytest.raises(FlushTimeout) as exc:
            queues.wait_empty(timeout=0.05)
        assert exc.value.pending == 7


# ---------------------------------------------------------------------------
# Engine serving surface (PR 5 hygiene)
# ---------------------------------------------------------------------------
class TestEngineServingSurface:
    def test_ingest_shard_parity_with_ingest(self):
        items = make_items(4_000)
        direct = ShardedSamplerEngine(G_CONFIG, shards=4, seed=9)
        routed = ShardedSamplerEngine(G_CONFIG, shards=4, seed=9)
        direct.ingest(items)
        for shard, sub in enumerate(routed.partitioner.split(items)):
            if sub.size:
                routed.ingest_shard(shard, sub)
        assert state_to_bytes(direct.snapshot()) == state_to_bytes(routed.snapshot())
        assert direct.sample() == routed.sample()

    def test_ingest_shard_timed_and_bounds(self):
        engine = ShardedSamplerEngine(TW_CONFIG, shards=2, seed=0)
        items = make_items(500)
        ts = uniform_arrivals(items.size, 100.0)
        sel = engine.partitioner.assign(items) == 0
        n = engine.ingest_shard(0, items[sel], timestamps=ts[sel])
        assert n == int(sel.sum())
        assert engine.watermarks()[0] is not None
        with pytest.raises(ValueError, match="out of range"):
            engine.ingest_shard(7, items[:1])

    def test_ingest_shard_bumps_only_that_epoch(self):
        engine = ShardedSamplerEngine(G_CONFIG, shards=4, seed=9)
        before = engine.mutation_epochs()
        engine.ingest_shard(2, engine.partitioner.split(make_items(800))[2])
        after = engine.mutation_epochs()
        assert after[2] == before[2] + 1
        assert [e for i, e in enumerate(after) if i != 2] == [
            e for i, e in enumerate(before) if i != 2
        ]

    def test_acquire_fold_reuses_cache(self):
        engine = ShardedSamplerEngine(G_CONFIG, shards=4, seed=1)
        engine.ingest(make_items(2_000))
        handle = engine.acquire_fold()
        assert list(handle.epochs) == engine.mutation_epochs()
        again = engine.acquire_fold()
        assert again.fold is handle.fold  # full epoch hit: same object
        assert engine.cache_info()["hits"] >= 1

    def test_cache_info_rebase_counter(self):
        engine = ShardedSamplerEngine(G_CONFIG, shards=8, seed=1)
        engine.ingest(make_items(4_000))
        engine.sample()
        # Dirty exactly the last shard: a prefix rebase, counted as such.
        last = engine.shards - 1
        sub = engine.partitioner.split(make_items(4_000, seed=11))[last]
        engine.ingest_shard(last, sub)
        engine.sample()
        info = engine.cache_info()
        assert info["rebases"] == info["partial"] >= 1
        assert {"hits", "misses", "rebases", "prefix_folds"} <= info.keys()

    def test_compact_shard_epoch_discipline(self):
        engine = ShardedSamplerEngine(TW_CONFIG, shards=2, seed=0)
        items = make_items(400)
        ts = uniform_arrivals(items.size, 200.0)
        engine.ingest(items, timestamps=ts)
        before = engine.mutation_epochs()
        # Advancing far past the horizon drops expired generations.
        freed = sum(
            engine.compact_shard(s, now=float(ts[-1]) + 100.0)
            for s in range(engine.shards)
        )
        assert freed > 0
        assert engine.mutation_epochs() != before
        # A second pass finds nothing; epochs must stay put.
        marks = engine.mutation_epochs()
        assert (
            sum(engine.compact_shard(s) for s in range(engine.shards)) == 0
        )
        assert engine.mutation_epochs() == marks


# ---------------------------------------------------------------------------
# Query-view RNG spawning (lifecycle)
# ---------------------------------------------------------------------------
class TestQueryViews:
    def test_derive_reader_rng_reproducible_and_distinct(self):
        a = derive_reader_rng(7, 0, 0).random(4)
        b = derive_reader_rng(7, 0, 0).random(4)
        c = derive_reader_rng(7, 0, 1).random(4)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_view_leaves_original_stream_untouched(self):
        engine = ShardedSamplerEngine(G_CONFIG, shards=4, seed=2)
        engine.ingest(make_items(3_000))
        fold = engine.acquire_fold().fold
        reference = ShardedSamplerEngine(G_CONFIG, shards=4, seed=2)
        reference.ingest(make_items(3_000))
        views = [
            spawn_query_view(fold, derive_reader_rng(2, 0, r)) for r in range(3)
        ]
        for view in views:
            res = view.sample()
            assert res.outcome in (SampleOutcome.ITEM, SampleOutcome.FAIL)
        # Spawning + querying views never advanced the fold's stream.
        assert engine.sample() == reference.sample()

    def test_rebind_replaces_generators(self):
        engine = ShardedSamplerEngine(G_CONFIG, shards=2, seed=2)
        engine.ingest(make_items(500))
        import copy

        view = copy.deepcopy(engine.acquire_fold().fold)
        rng = np.random.default_rng(0)
        assert rebind_query_rngs(view, rng) >= 1
        assert view._rng is rng

    def test_rebind_reaches_nested_containers(self):
        """Generators two container levels deep (list-of-tuples holding
        sub-objects, dict-of-lists, direct list elements) must all
        rebind — a family served through the generic fallback may nest
        its pools arbitrarily."""

        class Pool:
            def __init__(self):
                self._rng = np.random.default_rng(1)

        Pool.__module__ = "repro.fake"

        class Nested:
            def __init__(self):
                self._pairs = [(0, Pool()), (1, Pool())]
                self._table = {60.0: [Pool()], 300.0: [Pool(), Pool()]}
                self._loose = [np.random.default_rng(2)]

        Nested.__module__ = "repro.fake"
        rng = np.random.default_rng(0)
        nested = Nested()
        assert rebind_query_rngs(nested, rng) == 6
        assert all(pool._rng is rng for __, pool in nested._pairs)
        assert all(
            pool._rng is rng
            for pools in nested._table.values()
            for pool in pools
        )
        assert nested._loose[0] is rng

    def test_window_bank_hook_member_streams(self):
        bank = WindowBank((4.0, 16.0), p=2.0, n=256, instances=8, seed=3)
        items = np.asarray(zipf_stream(256, 2_000, alpha=1.2, seed=1).items)
        ts = uniform_arrivals(items.size, 250.0)
        bank.update_batch(items, ts)
        assert has_query_rng_hook(bank)
        view = bank.spawn_query_rng(np.random.default_rng(11))
        assert view is not bank
        streams = {id(member._rng) for member in view._members()}
        assert len(streams) == len(list(view._members()))  # distinct per member
        res = view.sample(4.0)
        assert isinstance(res.outcome, SampleOutcome)
        assert view.sample_distinct(16.0).outcome in (SampleOutcome.ITEM, SampleOutcome.EMPTY)
        # The live bank's streams were not consumed by the spawn.
        twin = WindowBank((4.0, 16.0), p=2.0, n=256, instances=8, seed=3)
        twin.update_batch(items, ts)
        assert bank.sample(4.0) == twin.sample(4.0)


# ---------------------------------------------------------------------------
# Serving determinism
# ---------------------------------------------------------------------------
class TestServingDeterminism:
    def test_serialized_mode_bitwise_equals_direct_engine(self):
        items = make_items(12_000)
        engine = ShardedSamplerEngine(G_CONFIG, shards=8, seed=7)
        with SamplerService(
            G_CONFIG, shards=8, seed=7, serialized=True, compact_interval=None
        ) as svc:
            for lo in range(0, items.size, 3_000):
                batch = items[lo:lo + 3_000]
                svc.submit(batch)
                engine.ingest(batch)
                assert svc.sample() == engine.sample()
                assert svc.sample_many(5) == engine.sample_many(5)
            assert state_to_bytes(svc.engine.snapshot()) == state_to_bytes(
                engine.snapshot()
            )

    def test_serialized_mode_timed_kind(self):
        items = make_items(4_000)
        ts = uniform_arrivals(items.size, 1_000.0)
        engine = ShardedSamplerEngine(TW_CONFIG, shards=4, seed=7)
        with SamplerService(
            TW_CONFIG, shards=4, seed=7, serialized=True, compact_interval=None
        ) as svc:
            for lo in range(0, items.size, 1_000):
                svc.submit(items[lo:lo + 1_000], ts[lo:lo + 1_000])
                engine.ingest(items[lo:lo + 1_000], timestamps=ts[lo:lo + 1_000])
                assert svc.sample() == engine.sample()

    def test_serialized_mode_f0_kind(self):
        """F0 queries (shared-random-subset merges) through the service:
        serialized mode must match direct engine calls bitwise."""
        config = {"kind": "f0", "n": 1 << 10}
        items = make_items(6_000)
        engine = ShardedSamplerEngine(config, shards=4, seed=7)
        with SamplerService(
            config, shards=4, seed=7, serialized=True, compact_interval=None
        ) as svc:
            for lo in range(0, items.size, 2_000):
                svc.submit(items[lo:lo + 2_000])
                engine.ingest(items[lo:lo + 2_000])
                assert svc.sample() == engine.sample()

    def test_per_reader_f0_distinct_sampling(self):
        """Lock-free F0 serving: every sampled item was actually
        submitted (a torn or mis-merged fold would surface here)."""
        config = {"kind": "tw_f0", "n": 1 << 10, "horizon": 60.0}
        items = make_items(8_000)
        ts = uniform_arrivals(items.size, 4_000.0)
        with SamplerService(
            config, shards=4, seed=2, ingest_workers=2, refresh_interval=0.01
        ) as svc:
            svc.submit(items, ts)
            svc.flush(timeout=30.0)
            svc.refresh()
            seen = set(items.tolist())
            drawn = [svc.sample() for __ in range(40)]
            hits = [r for r in drawn if r.is_item]
            assert hits  # an active 60s window over 2s of data: items exist
            assert all(r.item in seen for r in hits)

    @pytest.mark.parametrize("workers", [1, 3, 8])
    def test_worker_count_never_changes_final_state(self, workers):
        items = make_items(10_000)
        sequential = ShardedSamplerEngine(G_CONFIG, shards=8, seed=4)
        svc = SamplerService(
            G_CONFIG, shards=8, seed=4, ingest_workers=workers,
            refresh_interval=0.01,
        )
        try:
            for lo in range(0, items.size, 1_250):
                svc.submit(items[lo:lo + 1_250])
                sequential.ingest(items[lo:lo + 1_250])
            svc.flush(timeout=30.0)
            assert state_to_bytes(svc.engine.snapshot()) == state_to_bytes(
                sequential.snapshot()
            )
        finally:
            drain_close(svc)

    def test_single_reader_sequence_reproducible(self):
        items = make_items(6_000)

        def run() -> list:
            with SamplerService(
                G_CONFIG, shards=4, seed=21, ingest_workers=2,
                refresh_interval=1e9, compact_interval=None,
            ) as svc:
                svc.submit(items)
                svc.flush(timeout=30.0)
                svc.refresh()
                return [svc.sample() for __ in range(20)]

        assert run() == run()


# ---------------------------------------------------------------------------
# Concurrent serving behavior
# ---------------------------------------------------------------------------
class TestConcurrentServing:
    def test_lock_free_readers_with_live_writers(self):
        items = make_items(40_000)
        errors: list[Exception] = []
        results: list = []
        svc = SamplerService(
            G_CONFIG, shards=8, seed=0, ingest_workers=4,
            refresh_interval=0.005, compact_interval=0.05,
        )

        def reader():
            try:
                got = []
                for __ in range(60):
                    got.append(svc.sample())
                    time.sleep(0.001)
                results.extend(got)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(6)]
        try:
            for thread in threads:
                thread.start()
            for lo in range(0, items.size, 2_000):
                svc.submit(items[lo:lo + 2_000])
                time.sleep(0.002)
            for thread in threads:
                thread.join()
            assert not errors
            assert len(results) == 6 * 60
            for res in results:
                assert isinstance(res.outcome, SampleOutcome)
            stats = svc.stats()
            assert stats["query"]["served"] >= 360
            assert stats["query"]["readers"] >= 6
            assert stats["query"]["refreshes"] >= 2
        finally:
            drain_close(svc)

    def test_invalidate_cache_under_concurrent_readers(self):
        """PR 5 hygiene regression: hammering invalidate_cache() (the
        documented escape hatch after direct shard mutation) while
        lock-free readers serve must neither crash a reader nor wedge
        the refresh loop — every post-invalidation refresh re-folds."""
        items = make_items(20_000)
        errors: list[Exception] = []
        svc = SamplerService(
            G_CONFIG, shards=8, seed=0, ingest_workers=2,
            refresh_interval=0.002, compact_interval=None,
        )
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    assert isinstance(svc.sample().outcome, SampleOutcome)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        try:
            svc.submit(items)
            svc.flush(timeout=30.0)
            for thread in threads:
                thread.start()
            folds_before = svc.engine.cache_info()
            for __ in range(25):
                svc.engine.invalidate_cache()
                svc.refresh()
                time.sleep(0.002)
            stop.set()
            for thread in threads:
                thread.join()
            assert not errors
            info = svc.engine.cache_info()
            rebuilt = (
                info["misses"] + info["rebases"]
                - folds_before["misses"] - folds_before["rebases"]
            )
            assert rebuilt >= 25  # every invalidation forced a real re-fold
        finally:
            drain_close(svc)

    def test_stress_readers_writers_compaction_ticker(self):
        """Readers + writers + compaction ticker on a time-windowed kind:
        no torn folds (every result well-formed), watermarks never run
        backwards, and nothing deadlocks inside the run budget."""
        m = 30_000
        items = make_items(m)
        ts = uniform_arrivals(m, 2_000.0)  # 15s of stream time, 8s window
        errors: list[Exception] = []
        reader_marks: list[list[float]] = [[] for _ in range(4)]
        svc = SamplerService(
            TW_CONFIG, shards=4, seed=1, ingest_workers=3,
            refresh_interval=0.004, compact_interval=0.02,
        )
        stop = threading.Event()

        def reader(idx: int):
            try:
                while not stop.is_set():
                    res = svc.sample()
                    assert isinstance(res.outcome, SampleOutcome)
                    if res.is_item:
                        assert 0 <= res.item < 1 << 10
                    mark = svc.stats()["query"]["fold_watermark"]
                    if mark is not None:
                        reader_marks[idx].append(mark)
                    time.sleep(0.001)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(r,)) for r in range(4)]
        try:
            for thread in threads:
                thread.start()
            for lo in range(0, m, 1_500):
                svc.submit(items[lo:lo + 1_500], ts[lo:lo + 1_500])
                time.sleep(0.003)
            svc.flush(timeout=30.0)
            stop.set()
            for thread in threads:
                thread.join()
            assert not errors
            stats = svc.stats()
            assert stats["compaction"]["passes"] >= 1
            assert stats["ingest"]["applied_items"] == m
            assert stats["ingest"]["worker_errors"] == 0
        finally:
            drain_close(svc)
        # Watermark-violation check: publications only advance, so each
        # reader's *own* sequence of observed fold watermarks must be
        # non-decreasing (readers interleave, so only the per-reader
        # order is meaningful).
        for marks in reader_marks:
            assert marks == sorted(marks)
        # Readers may stop before observing the very last publication,
        # but no observation may ever exceed the true ingest frontier.
        observed = max(max(m) for m in reader_marks if m)
        assert observed <= float(ts[-1]) + 1e-9
        assert svc.engine.watermark() == pytest.approx(float(ts[-1]))


# ---------------------------------------------------------------------------
# Backpressure + rate caps end to end
# ---------------------------------------------------------------------------
class TestServiceAdmission:
    def test_shed_policy_surfaces_backpressure(self):
        items = make_items(50_000)
        svc = SamplerService(
            G_CONFIG, shards=2, seed=0, ingest_workers=1,
            queue_capacity=2_000, backpressure="shed",
            refresh_interval=1e9, compact_interval=None,
        )
        try:
            # Wedge both lanes so queued batches pile up to the
            # high-water mark instead of draining between submits.
            shed = 0
            with svc._shard_locks[0], svc._shard_locks[1]:
                for lo in range(0, items.size, 1_500):
                    try:
                        svc.submit(items[lo:lo + 1_500])
                    except Backpressure as exc:
                        shed += 1
                        assert exc.shard is not None
            assert shed >= 1
            svc.flush(timeout=30.0)
            stats = svc.stats()
            # Atomic rejection: accepted == applied exactly.
            assert stats["ingest"]["applied_items"] == stats["ingest"][
                "submitted_items"
            ]
            assert stats["ingest"]["backpressure_shed"] == shed
        finally:
            drain_close(svc)

    def test_tenant_rate_caps(self):
        svc = SamplerService(
            G_CONFIG, shards=2, seed=0, ingest_workers=1,
            default_rate=(500.0, 1_000.0),
            refresh_interval=1e9, compact_interval=None,
        )
        try:
            svc.submit(make_items(1_000), tenant="bursty")
            with pytest.raises(RateLimited) as exc:
                svc.submit(make_items(800), tenant="bursty")
            assert exc.value.retry_after > 0
            # An unrelated tenant has its own bucket.
            svc.submit(make_items(900), tenant="calm")
            assert svc.stats()["ingest"]["rate_limited"] == 1
        finally:
            drain_close(svc)

    def test_failed_batch_never_wedges_flush(self):
        """A batch the sampler rejects (here: untimed items into a
        time-windowed kind) must release its queue occupancy, reach the
        worker-error channel, and leave flush() unwedged."""
        svc = SamplerService(
            TW_CONFIG, shards=2, seed=0, ingest_workers=1,
            refresh_interval=1e9, compact_interval=None,
        )
        items = make_items(1_000)
        ts = uniform_arrivals(items.size, 500.0)
        svc.submit(items, ts)
        svc.submit(items[:200])  # no timestamps: the tw sampler rejects it
        svc._queues.wait_empty(timeout=10.0)  # drains despite the failure
        with pytest.raises(ServiceClosed, match="ingest worker"):
            svc.flush()
        svc.close(drain=False)

    def test_refresh_failure_latches_onto_queries(self):
        """When the ticker's fold refresh fails (watermark skew), the
        lock-free query path must surface that error instead of serving
        the stale pre-skew fold forever — and recover once skew clears."""
        from repro.lifecycle import WatermarkSkewError

        svc = SamplerService(
            TW_CONFIG, shards=2, seed=0, ingest_workers=1,
            max_watermark_skew=5.0,
            refresh_interval=1e9, compact_interval=None,
        )
        try:
            items = make_items(2_000)
            ts = uniform_arrivals(items.size, 1_000.0)
            svc.submit(items, ts)
            svc.flush(timeout=10.0)
            svc.refresh()
            assert isinstance(svc.sample().outcome, SampleOutcome)
            # Skew one shard's clock far beyond the tolerance, behind
            # the engine's back, then force the refresh the ticker
            # would have run.
            svc.engine.samplers[0].compact(float(ts[-1]) + 100.0)
            svc.engine.invalidate_cache()
            with pytest.raises(WatermarkSkewError):
                svc.refresh()
            with pytest.raises(WatermarkSkewError):
                svc.sample()  # latched: no silent stale serving
            # Clearing the skew (advance the other shard too) recovers.
            svc.engine.samplers[1].compact(float(ts[-1]) + 100.0)
            svc.engine.invalidate_cache()
            svc.refresh()
            assert isinstance(svc.sample().outcome, SampleOutcome)
        finally:
            drain_close(svc)

    def test_oversized_batch_fails_loudly(self):
        """A subchunk that can never fit its lane must raise, not park
        the submitter forever (block) or demand hopeless retries (shed)."""
        svc = SamplerService(
            G_CONFIG, shards=1, seed=0, ingest_workers=1, queue_capacity=100,
            refresh_interval=1e9, compact_interval=None,
        )
        try:
            with pytest.raises(ValueError, match="exceeds the per-shard"):
                svc.submit(make_items(500))
        finally:
            drain_close(svc)

    def test_backpressure_refunds_rate_tokens(self):
        """Admission + queueing are jointly atomic: a shed submit must
        not burn the tenant's rate budget."""
        svc = SamplerService(
            G_CONFIG, shards=1, seed=0, ingest_workers=1,
            queue_capacity=1_000, backpressure="shed",
            default_rate=(10.0, 2_000.0),  # budget for two batches, barely
            refresh_interval=1e9, compact_interval=None,
        )
        try:
            # Wedge the lane so the second submit sheds on backpressure
            # (it passes admission: 1800 ≤ the 2000-token burst).
            with svc._shard_locks[0]:
                svc.submit(make_items(900), tenant="t")
                with pytest.raises(Backpressure):
                    svc.submit(make_items(900), tenant="t")
            svc.flush(timeout=30.0)
            # The shed batch's 900 tokens came back: a third 900-item
            # submit still clears admission (200 + 900 refunded ≥ 900;
            # without the refund it would be RateLimited).
            assert svc.submit(make_items(900), tenant="t") == 900
        finally:
            drain_close(svc)

    def test_over_burst_batch_permanently_inadmissible(self):
        svc = SamplerService(
            G_CONFIG, shards=2, seed=0, ingest_workers=1,
            default_rate=(100.0, 50.0),
            refresh_interval=1e9, compact_interval=None,
        )
        try:
            with pytest.raises(RateLimited, match="burst cap") as exc:
                svc.submit(make_items(200), tenant="t")
            assert exc.value.retry_after == float("inf")
        finally:
            drain_close(svc)

    def test_submit_after_close_raises(self):
        svc = SamplerService(G_CONFIG, shards=2, ingest_workers=1)
        svc.close()
        svc.close()  # idempotent
        with pytest.raises(ServiceClosed):
            svc.submit(make_items(10))
        with pytest.raises(ServiceClosed):
            svc.sample()


# ---------------------------------------------------------------------------
# Asyncio facade
# ---------------------------------------------------------------------------
class TestAsyncFacade:
    def test_async_round_trip_with_concurrent_clients(self):
        async def scenario():
            items = make_items(16_000)
            async with AsyncSamplerService(
                G_CONFIG, shards=4, seed=0, ingest_workers=2,
                refresh_interval=0.01,
            ) as svc:
                async def feed():
                    for lo in range(0, items.size, 2_000):
                        await svc.submit(items[lo:lo + 2_000])
                    await svc.flush(20.0)
                    await svc.refresh()

                async def client(n):
                    return [await svc.sample() for __ in range(n)]

                fed, *answers = await asyncio.gather(
                    feed(), client(10), client(10), client(10)
                )
                assert all(
                    isinstance(r.outcome, SampleOutcome)
                    for batch in answers
                    for r in batch
                )
                many = await svc.sample_many(50)
                assert len(many) == 50
                stats = await svc.stats()
                assert stats["query"]["served"] >= 31

        # The deadlock guard: the whole scenario must finish promptly.
        asyncio.run(asyncio.wait_for(scenario(), timeout=60.0))

    def test_wraps_existing_service_and_rejects_extras(self):
        core = SamplerService(G_CONFIG, shards=2, ingest_workers=1)
        try:
            with pytest.raises(ValueError, match="existing SamplerService"):
                AsyncSamplerService(core, shards=4)

            async def go():
                svc = AsyncSamplerService(core)
                await svc.submit(make_items(500))
                await svc.flush(10.0)
                assert isinstance((await svc.sample()).outcome, SampleOutcome)
                assert svc.service is core

            asyncio.run(asyncio.wait_for(go(), timeout=30.0))
        finally:
            drain_close(core)


# ---------------------------------------------------------------------------
# CLI smoke
# ---------------------------------------------------------------------------
class TestCli:
    def test_smoke_untimed(self, capsys):
        code = serve_main(
            [
                "--config", '{"kind": "g", "measure": {"name": "huber"}, '
                '"instances": 16}',
                "--items", "20000", "--clients", "2", "--queries", "6",
                "--client-interval", "0.001", "--json",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert '"items_applied": 20000' in out

    def test_smoke_serialized_timed(self, capsys):
        code = serve_main(
            [
                "--config", '{"kind": "tw_lp", "p": 2.0, "horizon": 20.0, '
                '"instances": 16}',
                "--items", "10000", "--clients", "1", "--queries", "4",
                "--client-interval", "0.001", "--serialized",
            ]
        )
        assert code == 0
        assert "ingested 10000/10000" in capsys.readouterr().out

    def test_bad_config_is_a_usage_error(self, capsys):
        assert serve_main(["--config", "{not json"]) == 2
        assert serve_main(["--config", '{"kind": "nope"}']) == 2
