"""Tests for sliding-window samplers (Algorithms 4 & 6, Corollary 5.3)."""

import numpy as np
import pytest

from helpers import assert_matches_distribution
from repro.core import HuberMeasure, L1L2Measure
from repro.sliding_window import (
    SlidingWindowF0Sampler,
    SlidingWindowGSampler,
    SlidingWindowLpSampler,
)
from repro.stats import f0_target, g_target, lp_target
from repro.streams import zipf_stream

N, W = 12, 200
STREAM = zipf_stream(N, 700, alpha=1.0, seed=21)
WFREQ = STREAM.window_frequencies(W)


class TestSlidingWindowGSampler:
    def test_huber_window_distribution(self):
        target = g_target(WFREQ, HuberMeasure())

        def run(seed):
            return SlidingWindowGSampler(HuberMeasure(), window=W, seed=seed).run(STREAM)

        assert_matches_distribution(run, target, trials=2500, max_fail_rate=0.05)

    def test_short_stream_whole_coverage(self):
        """When t < W the 'window' is the entire stream."""
        short = zipf_stream(N, 50, seed=1)
        target = g_target(short.frequencies(), L1L2Measure())

        def run(seed):
            return SlidingWindowGSampler(L1L2Measure(), window=W, seed=seed).run(short)

        assert_matches_distribution(run, target, trials=2500, max_fail_rate=0.05)

    def test_expired_items_never_sampled(self):
        """An item appearing only before the window must have zero mass."""
        # item 0 appears only in the first 100 updates; window is last 100.
        items = [0] * 100 + [1 + (i % 3) for i in range(100)]
        from repro.streams import Stream

        stream = Stream(items, n=5)
        for seed in range(150):
            res = SlidingWindowGSampler(
                HuberMeasure(), window=100, seed=seed
            ).run(stream)
            if res.is_item:
                assert res.item != 0

    def test_generations_capped_at_two(self):
        s = SlidingWindowGSampler(HuberMeasure(), window=50, instances=4, seed=0)
        s.extend(zipf_stream(N, 500, seed=2))
        assert s.generation_count == 2

    def test_empty(self):
        s = SlidingWindowGSampler(HuberMeasure(), window=10, seed=0)
        assert s.sample().is_empty

    def test_validates_params(self):
        with pytest.raises(ValueError):
            SlidingWindowGSampler(HuberMeasure(), window=0)
        with pytest.raises(ValueError):
            SlidingWindowGSampler(HuberMeasure(), window=5, delta=0.0)


class TestSlidingWindowLpSampler:
    def test_l2_window_distribution(self):
        target = lp_target(WFREQ, 2.0)

        def run(seed):
            # Modest instance count: FAIL rate rises but the conditional
            # distribution — the property under test — is unaffected.
            return SlidingWindowLpSampler(
                2.0, window=W, instances=60, seed=seed
            ).run(STREAM)

        assert_matches_distribution(
            run, target, trials=900, max_fail_rate=0.6
        )

    def test_p_one_reservoir_mode(self):
        target = lp_target(WFREQ, 1.0)

        def run(seed):
            return SlidingWindowLpSampler(1.0, window=W, instances=4, seed=seed).run(
                STREAM
            )

        assert_matches_distribution(run, target, trials=2000, max_fail_rate=0.05)

    def test_normalizer_certified_against_window(self):
        s = SlidingWindowLpSampler(2.0, window=W, instances=8, seed=0)
        s.extend(STREAM)
        linf = int(WFREQ.max())
        worst = linf**2 - (linf - 1) ** 2
        assert s.normalizer() >= worst - 1e-9

    def test_default_instances_scale(self):
        from repro.sliding_window.lp_window import sliding_window_lp_instances

        small = sliding_window_lp_instances(2.0, 64, 0.1)
        large = sliding_window_lp_instances(2.0, 4096, 0.1)
        assert large / small == pytest.approx(8.0, rel=0.2)  # W^{1/2}

    def test_rejects_p_below_one(self):
        with pytest.raises(ValueError):
            SlidingWindowLpSampler(0.5, window=10)

    def test_histogram_checkpoints_logarithmic(self):
        s = SlidingWindowLpSampler(2.0, window=100, instances=4, seed=0)
        s.extend(zipf_stream(N, 1500, seed=3))
        assert s.histogram_checkpoints <= 300


class TestSlidingWindowF0Sampler:
    def test_window_support_distribution(self):
        target = f0_target(WFREQ)

        def run(seed):
            return SlidingWindowF0Sampler(N, window=W, seed=seed).run(STREAM)

        assert_matches_distribution(run, target, trials=2500, max_fail_rate=0.05)

    def test_expired_support_excluded(self):
        from repro.streams import Stream

        items = [0] * 50 + [1, 2, 3] * 20
        stream = Stream(items, n=4)
        for seed in range(100):
            res = SlidingWindowF0Sampler(4, window=60, seed=seed).run(stream)
            assert res.is_item
            assert res.item != 0

    def test_sparse_window_regime_exact(self):
        """Window support below √n: the LRU holds it exactly."""
        stream = zipf_stream(400, 500, alpha=2.5, seed=4)  # few distinct
        wfreq = stream.window_frequencies(100)
        target = f0_target(wfreq)

        def run(seed):
            return SlidingWindowF0Sampler(400, window=100, seed=seed).run(stream)

        report = assert_matches_distribution(run, target, trials=2000)
        assert report.fail_rate <= 0.05

    def test_empty(self):
        s = SlidingWindowF0Sampler(8, window=5, seed=0)
        assert s.sample().is_empty

    def test_validates(self):
        with pytest.raises(ValueError):
            SlidingWindowF0Sampler(0, window=5)
        s = SlidingWindowF0Sampler(4, window=5, seed=0)
        with pytest.raises(ValueError):
            s.update(9)
