"""Shared test helpers (a proper importable module, *not* conftest).

``assert_matches_distribution`` lives in :mod:`repro.stats.harness` so
benchmarks and examples can use the same exactness check; this module
re-exports it for tests.  Import it as ``from helpers import
assert_matches_distribution`` — ``conftest.py`` is reserved for fixtures
(pytest imports conftest modules under a shared name, so library code in
them collides across directories).
"""

from __future__ import annotations

from repro.stats import assert_matches_distribution

__all__ = ["assert_matches_distribution"]
