"""Tests for the controlled-bias instrument (repro.perfect.biased)."""

import numpy as np
import pytest

from repro.core import LpMeasure
from repro.perfect import BiasedGSampler
from repro.stats import lp_target, total_variation
from repro.stats.harness import collect_outcomes, empirical_distribution
from repro.streams import stream_from_frequencies

FREQ = np.array([1, 2, 3, 10])
STREAM = stream_from_frequencies(FREQ, order="random", seed=2)


class TestBiasedGSampler:
    def test_gamma_zero_is_exact(self):
        s = BiasedGSampler(LpMeasure(1.0), 4, gamma=0.0, seed=0)
        s.extend(STREAM)
        assert total_variation(s.output_distribution(), lp_target(FREQ, 1.0)) == 0.0

    def test_output_distribution_is_planted_mixture(self):
        gamma = 0.2
        s = BiasedGSampler(LpMeasure(1.0), 4, gamma=gamma, bias_items=[0], seed=0)
        s.extend(STREAM)
        target = lp_target(FREQ, 1.0)
        out = s.output_distribution()
        expected = (1 - gamma) * target
        expected[0] += gamma
        assert np.allclose(out, expected)

    def test_tv_equals_gamma_times_planted_mass(self):
        gamma = 0.1
        s = BiasedGSampler(LpMeasure(1.0), 4, gamma=gamma, bias_items=[0], seed=0)
        s.extend(STREAM)
        tv = total_variation(s.output_distribution(), s.target_distribution())
        # TV of the mixture = γ·TV(planted, target) ≤ γ; positive here.
        assert 0 < tv <= gamma + 1e-12

    def test_sampling_matches_analytic_distribution(self):
        gamma = 0.3
        out_dist = None

        def run(seed):
            s = BiasedGSampler(
                LpMeasure(1.0), 4, gamma=gamma, bias_items=[0], seed=seed
            )
            return s.run(STREAM)

        counts, __, __ = collect_outcomes(run, trials=4000)
        emp = empirical_distribution(counts, 4)
        ref = BiasedGSampler(LpMeasure(1.0), 4, gamma=gamma, bias_items=[0], seed=0)
        ref.extend(STREAM)
        assert total_variation(emp, ref.output_distribution()) < 0.03

    def test_empty_stream(self):
        s = BiasedGSampler(LpMeasure(1.0), 4, seed=0)
        assert s.sample().is_empty

    def test_bias_falls_back_when_planted_items_absent(self):
        s = BiasedGSampler(LpMeasure(1.0), 4, gamma=0.5, bias_items=[3], seed=0)
        s.extend([0, 0, 1])  # item 3 never appears
        assert np.allclose(s.output_distribution(), s.target_distribution())

    def test_validates_gamma(self):
        with pytest.raises(ValueError):
            BiasedGSampler(LpMeasure(1.0), 4, gamma=1.0)
