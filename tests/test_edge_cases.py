"""Edge cases and failure injection across all sampler families."""

import numpy as np
import pytest

from repro.core import (
    Algorithm5F0Sampler,
    HuberMeasure,
    L1L2Measure,
    LpMeasure,
    RandomOracleF0Sampler,
    SampleOutcome,
    SampleResult,
    SamplerPool,
    TrulyPerfectF0Sampler,
    TrulyPerfectGSampler,
    TrulyPerfectLpSampler,
    TukeySampler,
)
from repro.random_order import RandomOrderL2Sampler
from repro.sliding_window import (
    SlidingWindowF0Sampler,
    SlidingWindowGSampler,
    SlidingWindowLpSampler,
)
from repro.streams import Stream


class TestSampleResult:
    def test_constructors(self):
        assert SampleResult.of(3).outcome is SampleOutcome.ITEM
        assert SampleResult.empty().is_empty
        assert SampleResult.fail().is_fail

    def test_metadata_passthrough(self):
        res = SampleResult.of(1, count=5)
        assert res.metadata["count"] == 5

    def test_frozen(self):
        res = SampleResult.of(1)
        with pytest.raises(AttributeError):
            res.item = 2


class TestLengthOneStreams:
    """Every sampler must handle a single-update stream."""

    STREAM = Stream([3], n=8)

    def test_g_sampler(self):
        res = TrulyPerfectGSampler(L1L2Measure(), instances=32, seed=0).run(
            self.STREAM
        )
        assert res.is_item and res.item == 3

    def test_lp_sampler(self):
        res = TrulyPerfectLpSampler(p=2.0, n=8, seed=0).run(self.STREAM)
        assert res.is_item and res.item == 3

    def test_f0_samplers(self):
        for sampler in (
            TrulyPerfectF0Sampler(8, seed=0),
            RandomOracleF0Sampler(8, seed=0),
        ):
            res = sampler.run(self.STREAM)
            assert res.is_item and res.item == 3

    def test_tukey(self):
        res = TukeySampler(8, tau=3.0, delta=0.01, seed=0).run(self.STREAM)
        # Tukey may reject; if it answers, the answer is forced.
        if res.is_item:
            assert res.item == 3

    def test_sliding_window(self):
        for sampler in (
            SlidingWindowGSampler(HuberMeasure(), window=5, seed=0),
            SlidingWindowLpSampler(2.0, window=5, instances=16, seed=0),
            SlidingWindowF0Sampler(8, window=5, seed=0),
        ):
            res = sampler.run(self.STREAM)
            assert res.is_item and res.item == 3


class TestUniverseOfOne:
    def test_constant_universe(self):
        stream = Stream([0, 0, 0], n=1)
        res = TrulyPerfectLpSampler(p=2.0, n=1, seed=0).run(stream)
        assert res.is_item and res.item == 0
        res = TrulyPerfectF0Sampler(1, seed=0).run(stream)
        assert res.is_item and res.item == 0


class TestDegenerateDistributions:
    def test_single_distinct_item_always_wins(self):
        stream = Stream([5] * 100, n=16)
        for seed in range(20):
            res = TrulyPerfectGSampler(
                HuberMeasure(), instances=16, seed=seed
            ).run(stream)
            if res.is_item:
                assert res.item == 5

    def test_max_count_increment_within_zeta(self):
        """c = m (one item only): the largest possible increment must
        still be ≤ ζ, exercising the boundary of the rejection step."""
        stream = Stream([0] * 50, n=4)
        s = TrulyPerfectLpSampler(p=2.0, n=4, seed=0)
        s.extend(stream)
        # Every instance holds item 0 with some count ≤ 50.
        assert s.normalizer() >= 50**2 - 49**2 - 1e-9
        assert s.sample().is_item  # never raises


class TestPoolReuseSemantics:
    def test_repeated_sample_calls_are_correlated_but_valid(self):
        """sample() may be called repeatedly; each call re-randomizes the
        acceptance coins over the same reservoir state."""
        stream = Stream(list(range(10)) * 10, n=10)
        s = TrulyPerfectGSampler(L1L2Measure(), instances=64, seed=0)
        s.extend(stream)
        outcomes = {s.sample().outcome for __ in range(10)}
        assert SampleOutcome.ITEM in outcomes

    def test_pool_updates_after_sample(self):
        """Sampling is non-destructive: the stream can continue."""
        s = TrulyPerfectGSampler(L1L2Measure(), instances=16, seed=0)
        s.extend([0, 1, 2])
        first = s.sample()
        s.extend([3, 4, 5])
        second = s.sample()
        assert s.position == 6
        assert first.outcome in (SampleOutcome.ITEM, SampleOutcome.FAIL)
        assert second.outcome in (SampleOutcome.ITEM, SampleOutcome.FAIL)


class TestGeneratorSeedSharing:
    def test_shared_generator_produces_different_samplers(self):
        rng = np.random.default_rng(7)
        a = TrulyPerfectLpSampler(p=2.0, n=8, seed=rng)
        b = TrulyPerfectLpSampler(p=2.0, n=8, seed=rng)
        stream = Stream([1, 2, 3, 1, 2, 1] * 20, n=8)
        ra = a.run(stream)
        rb = b.run(stream)
        # Both valid; drawing from the shared generator decorrelates them.
        assert ra.outcome in (SampleOutcome.ITEM, SampleOutcome.FAIL)
        assert rb.outcome in (SampleOutcome.ITEM, SampleOutcome.FAIL)


class TestWindowBoundaries:
    def test_window_one(self):
        s = SlidingWindowF0Sampler(8, window=1, seed=0)
        s.extend([1, 2, 3])
        res = s.sample()
        assert res.is_item and res.item == 3

    def test_window_equals_stream(self):
        stream = Stream([0, 1, 0, 1], n=4)
        s = SlidingWindowGSampler(HuberMeasure(), window=4, seed=0)
        res = s.run(stream)
        if res.is_item:
            assert res.item in (0, 1)

    def test_exactly_two_windows(self):
        """Generation rotation boundary: t = 2W."""
        s = SlidingWindowGSampler(HuberMeasure(), window=3, instances=8, seed=0)
        s.extend([0, 0, 0, 1, 1, 1])
        res = s.sample()
        if res.is_item:
            assert res.item == 1


class TestRandomOrderEdges:
    def test_odd_length_stream_ignores_trailing(self):
        s = RandomOrderL2Sampler(4, horizon=10, seed=0)
        s.extend([1, 1, 2])  # the trailing '2' never forms a pair
        res = s.sample()
        if res.is_item:
            assert res.item == 1

    def test_two_element_stream(self):
        s = RandomOrderL2Sampler(4, horizon=2, seed=0)
        s.extend([3, 3])  # guaranteed collision
        assert s.sample().item == 3


class TestFailureInjection:
    def test_zero_instances_rejected(self):
        with pytest.raises(ValueError):
            SamplerPool(0)

    def test_g_sampler_survives_all_reject(self):
        """Force rejection by a measure whose increments vanish at large
        counts (concave) on a heavy stream with a single instance."""
        import math

        from repro.core import ConcaveMeasure

        measure = ConcaveMeasure(lambda x: math.log2(1 + x), "log")
        stream = Stream([0] * 200, n=2)
        fails = 0
        for seed in range(50):
            s = TrulyPerfectGSampler(measure, instances=1, seed=seed)
            if s.run(stream).is_fail:
                fails += 1
        assert fails > 0  # rejection genuinely happens
        # ... and amplification drives failure to ~(1 - F_G/(ζm))^R:
        # acceptance/instance = log2(201)/200 ≈ 0.038, so R = 256 gives
        # failure probability ≈ 5e-5.
        amplified_fails = 0
        for seed in range(50):
            s = TrulyPerfectGSampler(measure, instances=256, seed=seed)
            if s.run(stream).is_fail:
                amplified_fails += 1
        assert amplified_fails <= 1

    def test_f0_dense_with_tiny_subset(self):
        """Algorithm 5's FAIL path: force S to miss the support."""
        fails = 0
        for seed in range(300):
            s = Algorithm5F0Sampler(10_000, seed=seed)
            # Support of 150 items (> √n = 100) out of 10k: S of 200
            # random items misses it reasonably often.
            s.extend(range(5_000, 5_150))
            if s.sample().is_fail:
                fails += 1
        assert 0 < fails < 300  # both branches exercised
