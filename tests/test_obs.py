"""repro.obs — metrics, tracing, and the instrumentation sweep.

Covers the instrument semantics (thread-safe exactness, log-bucket
quantiles vs numpy, label-cardinality bounds), the Prometheus/JSON
expositions (self-checked with :mod:`repro.obs.promcheck`), the span
API and :class:`TraceRecorder` harness, and the end-to-end contracts:
a served workload's exposition carries every catalogued instrument,
and the disabled registry leaves the serving path's bitwise-replay
guarantees untouched.
"""

import copy
import io
import json
import threading

import numpy as np
import pytest

from repro.engine import ShardedSamplerEngine
from repro.obs import (
    METRIC_CATALOG,
    NOOP,
    MetricsRegistry,
    TraceRecorder,
    Tracer,
    current_registry,
    log_buckets,
    span,
    use_registry,
)
from repro.obs.catalog import CATALOG_HELP
from repro.obs.metrics import MAX_CHILDREN
from repro.obs.promcheck import check_text
from repro.serving import RateLimited, SamplerService
from repro.streams.generators import zipf_stream
from repro.windows import WindowBank

G_CONFIG = {"kind": "g", "measure": {"name": "huber"}, "instances": 16}
WB_CONFIG = {
    "kind": "window_bank",
    "resolutions": [60.0, 300.0],
    "measure": {"name": "huber"},
    "instances": 8,
}


def make_items(m: int, seed: int = 3, n: int = 1 << 10) -> np.ndarray:
    return np.asarray(zipf_stream(n, m, alpha=1.2, seed=seed).items)


# ---------------------------------------------------------------------------
# instruments
# ---------------------------------------------------------------------------
class TestInstruments:
    def test_counter_inc_add(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total", "help")
        c.inc()
        c.add(4)
        assert c.total() == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total")
        with pytest.raises(ValueError):
            c.add(-1)

    def test_gauge_set_add_and_callback(self):
        reg = MetricsRegistry()
        g = reg.gauge("t_gauge")
        g.set(3.0)
        g.add(-1.0)
        assert g.value == 2.0
        box = [7.0]
        g.set_function(lambda: box[0])
        assert g.value == 7.0
        box[0] = 9.0
        assert g.value == 9.0

    def test_gauge_raising_callback_renders_nan(self):
        reg = MetricsRegistry()
        g = reg.gauge("t_gauge")
        g.set_function(lambda: 1 / 0)
        assert np.isnan(g.value)
        # The exposition must survive a broken callback.
        assert "t_gauge NaN" in reg.render_prometheus()

    def test_counter_thread_safety_exact(self):
        """Concurrent increments lose nothing — counters are locked,
        not racy, so stats() reconciliation can assert equality."""
        reg = MetricsRegistry()
        c = reg.counter("t_total", labels=("who",))
        children = [c.labels(who=str(i)) for i in range(4)]
        per_thread, threads = 5_000, 8

        def work(i):
            child = children[i % 4]
            for __ in range(per_thread):
                child.inc()

        ts = [threading.Thread(target=work, args=(i,)) for i in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert c.total() == per_thread * threads

    def test_histogram_observe_thread_safety(self):
        reg = MetricsRegistry()
        h = reg.histogram("t_seconds")
        per_thread, threads = 4_000, 6

        def work():
            for i in range(per_thread):
                h.observe(1e-6 * (1 + i % 100))

        ts = [threading.Thread(target=work) for __ in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        counts, __, count = h.labels().snapshot()
        assert count == per_thread * threads
        assert sum(counts) == count

    def test_log_buckets_monotone(self):
        bounds = log_buckets(1e-6, 16.0, 2.0)
        assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))
        assert bounds[0] == pytest.approx(1e-6)
        assert bounds[-1] >= 16.0

    def test_histogram_quantiles_vs_numpy(self):
        """Bucket-interpolated quantiles land within one bucket factor
        of the exact numpy percentiles (factor-2 default ladder)."""
        rng = np.random.default_rng(11)
        data = rng.lognormal(mean=-9.0, sigma=1.5, size=20_000)
        reg = MetricsRegistry()
        h = reg.histogram("t_seconds")
        for v in data:
            h.observe(float(v))
        for pct in (50, 90, 99):
            exact = float(np.percentile(data, pct))
            estimate = h.quantile(pct / 100.0)
            assert exact / 2.05 <= estimate <= exact * 2.05, (pct, exact, estimate)

    def test_histogram_percentiles_keys(self):
        reg = MetricsRegistry()
        h = reg.histogram("t_seconds")
        h.observe(0.001)
        assert set(h.percentiles()) == {"p50", "p90", "p99"}

    def test_empty_histogram_quantile_nan(self):
        reg = MetricsRegistry()
        h = reg.histogram("t_seconds")
        assert np.isnan(h.quantile(0.5))

    def test_label_children_and_total_filter(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total", labels=("tenant", "outcome"))
        c.labels(tenant="a", outcome="ok").add(2)
        c.labels(tenant="a", outcome="err").add(3)
        c.labels(tenant="b", outcome="ok").add(5)
        assert c.total() == 10
        assert c.total(tenant="a") == 5
        assert c.total(outcome="ok") == 7
        with pytest.raises(ValueError):
            c.total(nope="x")
        with pytest.raises(ValueError):
            c.labels(tenant="a")  # missing the outcome label

    def test_label_cardinality_overflow(self):
        """Past MAX_CHILDREN distinct label sets, new children collapse
        into the shared ``_other`` child — adversarial label values
        (tenant ids, say) cannot grow the registry unboundedly."""
        reg = MetricsRegistry()
        c = reg.counter("t_total", labels=("tenant",))
        extra = 50
        for i in range(MAX_CHILDREN + extra):
            c.labels(tenant=f"t{i}").inc()
        children = c.children()
        assert len(children) == MAX_CHILDREN + 1
        assert children[("_other",)].value == extra
        assert c.total() == MAX_CHILDREN + extra

    def test_type_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("t_total", labels=("a",))
        with pytest.raises(ValueError):
            reg.gauge("t_total", labels=("a",))
        with pytest.raises(ValueError):
            reg.counter("t_total", labels=("b",))

    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("t_total", labels=("x",))
        assert c is NOOP
        assert c.labels(x="y") is NOOP
        assert not c.enabled
        c.inc()
        c.add(10)
        assert c.total() == 0
        assert reg.names() == []
        assert reg.render_prometheus() == ""

    def test_instruments_are_deepcopy_shared(self):
        """Samplers holding instrument handles get deep-copied into
        folds and query views; the copies must report into the *same*
        counters, not silently forked ones."""
        reg = MetricsRegistry()
        c = reg.counter("t_total").labels()
        holder = {"c": c, "reg": reg}
        clone = copy.deepcopy(holder)
        assert clone["c"] is c
        assert clone["reg"] is reg

    def test_use_registry_is_thread_local(self):
        reg = MetricsRegistry()
        seen = {}

        def other():
            seen["inner"] = current_registry()

        with use_registry(reg):
            assert current_registry() is reg
            t = threading.Thread(target=other)
            t.start()
            t.join()
        assert current_registry() is not reg
        assert seen["inner"] is not reg


# ---------------------------------------------------------------------------
# exposition
# ---------------------------------------------------------------------------
class TestExposition:
    def _populated(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_t_items_total", "items", labels=("tenant",))
        c.labels(tenant="a").add(3)
        c.labels(tenant='we"ird\\x').add(1)  # escaping round-trip
        reg.gauge("repro_t_depth", "depth").set(4)
        h = reg.histogram("repro_t_seconds", "latency")
        h.observe(0.002)
        h.observe(0.1)
        return reg

    def test_prometheus_passes_promcheck(self):
        assert check_text(self._populated().render_prometheus()) == []

    def test_prometheus_golden_shape(self):
        text = self._populated().render_prometheus()
        assert "# HELP repro_t_items_total items" in text
        assert "# TYPE repro_t_items_total counter" in text
        assert 'repro_t_items_total{tenant="a"} 3' in text
        assert "# TYPE repro_t_seconds histogram" in text
        assert 'le="+Inf"' in text
        assert "repro_t_seconds_count 2" in text
        assert "repro_t_seconds_sum" in text

    def test_prometheus_label_escaping(self):
        text = self._populated().render_prometheus()
        assert 'tenant="we\\"ird\\\\x"' in text
        assert check_text(text) == []

    def test_bucket_counts_cumulative(self):
        text = self._populated().render_prometheus()
        values = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_t_seconds_bucket")
        ]
        assert values == sorted(values)
        assert values[-1] == 2

    def test_empty_family_still_renders_headers(self):
        reg = MetricsRegistry()
        reg.counter("repro_t_items_total", "items", labels=("tenant",))
        text = reg.render_prometheus()
        assert "# TYPE repro_t_items_total counter" in text
        # no samples yet — promcheck's liveness check must flag it
        assert any("no sample" in e for e in check_text(text))
        assert check_text(text, require_samples=False) == []

    def test_promcheck_catches_malformed_lines(self):
        assert check_text("what even is this line") != []
        assert check_text("# NONSENSE foo bar") != []
        text = "# TYPE a_total counter\na_total 1\n"
        assert check_text(text) == []
        assert check_text(text, require=("missing_total",)) != []

    def test_render_json_round_trips(self):
        payload = json.loads(self._populated().render_json_text())
        assert payload["repro_t_depth"]["samples"][0]["value"] == 4
        histo = payload["repro_t_seconds"]["samples"][0]
        assert histo["count"] == 2
        assert histo["p99"] is not None
        assert histo["sum"] == pytest.approx(0.102)


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------
class TestTracing:
    def test_span_records_wall_time_and_attrs(self):
        with TraceRecorder() as rec:
            with span("unit.op", shard=3) as sp:
                sp.set(extra="x")
        (event,) = rec.spans("unit.op")
        assert event.outcome == "ok"
        assert event.duration_ns >= 0
        assert event.attrs == {"shard": 3, "extra": "x"}

    def test_span_records_exception_outcome(self):
        with TraceRecorder() as rec:
            with pytest.raises(KeyError):
                with span("unit.fail"):
                    raise KeyError("boom")
        assert rec.outcomes("unit.fail") == ["KeyError"]

    def test_disabled_ambient_tracer_is_noop(self):
        # default state: no recorder installed, spans vanish
        with span("unit.ignored"):
            pass
        with TraceRecorder() as rec:
            pass
        assert rec.names() == []

    def test_ring_buffer_bounds_memory(self):
        tracer = Tracer(capacity=16)
        for i in range(100):
            with tracer.span("op", i=i):
                pass
        events = tracer.events()
        assert len(events) == 16
        assert events[-1].attrs["i"] == 99
        assert tracer.dropped_hint == 84

    def test_jsonl_export_round_trip(self):
        with TraceRecorder() as rec:
            with span("unit.op", k=1):
                pass
        buf = io.StringIO()
        assert rec.export_jsonl(buf) == 1
        row = json.loads(buf.getvalue())
        assert row["name"] == "unit.op"
        assert row["outcome"] == "ok"
        assert row["attrs"] == {"k": 1}
        assert row["duration_us"] >= 0


# ---------------------------------------------------------------------------
# engine instrumentation
# ---------------------------------------------------------------------------
class TestEngineInstrumentation:
    def _engine(self, reg, **kw):
        return ShardedSamplerEngine(G_CONFIG, shards=4, seed=7, metrics=reg, **kw)

    @staticmethod
    def _suffix_item(engine):
        """An item routed to a late shard, so dirtying it leaves a clean
        prefix ≥ k//2 and the next fold takes the rebase regime."""
        return next(
            i for i in range(10_000) if engine.shard_of(i) >= engine.shards // 2
        )

    def test_fold_regimes_counted(self):
        reg = MetricsRegistry()
        engine = self._engine(reg)
        engine.ingest(make_items(4_000))
        engine.sample()  # scratch fold
        engine.sample()  # full hit
        engine.update(self._suffix_item(engine))
        engine.sample()  # prefix rebase
        fold = reg.get("repro_engine_fold_total")
        assert fold.total(regime="scratch") >= 1
        assert fold.total(regime="hit") >= 1
        assert fold.total(regime="rebase") >= 1
        info = engine.cache_info()
        assert fold.total(regime="hit") == info["hits"]
        assert fold.total(regime="scratch") == info["misses"]
        assert fold.total(regime="rebase") == info["rebases"]

    def test_fold_duration_histogram_observes(self):
        reg = MetricsRegistry()
        engine = self._engine(reg)
        engine.ingest(np.arange(1_000))
        engine.sample()
        h = reg.get("repro_engine_fold_seconds")
        __, total_sum, count = h.labels(regime="scratch").snapshot()
        assert count >= 1
        assert total_sum > 0

    def test_epoch_bump_reasons(self):
        reg = MetricsRegistry()
        engine = self._engine(reg)
        engine.ingest(np.arange(100))  # all four shards see items
        engine.invalidate_cache()
        epoch = reg.get("repro_engine_epoch_bumps_total")
        assert epoch.total(reason="ingest") == 4
        assert epoch.total(reason="invalidate") == 4
        # the counter reconciles with the engine's own epoch list
        assert epoch.total() == sum(engine.mutation_epochs())

    def test_restore_and_merge_reasons(self):
        reg = MetricsRegistry()
        engine = self._engine(reg)
        engine.ingest(np.arange(200))
        engine.restore(engine.snapshot())
        epoch = reg.get("repro_engine_epoch_bumps_total")
        assert epoch.total(reason="restore") == 4
        other = self._engine(MetricsRegistry())
        other.ingest(np.arange(200, 300))
        engine.merge(other)
        assert epoch.total(reason="merge") == 4
        assert epoch.total() == sum(engine.mutation_epochs())

    def test_engine_fold_span(self):
        engine = self._engine(MetricsRegistry())
        engine.ingest(np.arange(500))
        with TraceRecorder() as rec:
            engine.sample()
        (event,) = rec.spans("engine.fold")
        assert event.attrs["regime"] == "scratch"
        assert event.attrs["shards"] == 4

    def test_cache_info_partial_alias_tracks_rebases(self):
        """Satellite: the deprecated ``partial`` key is emitted from the
        ``rebases`` entry — the two can never drift."""
        engine = self._engine(MetricsRegistry())
        engine.ingest(np.arange(500))
        engine.sample()
        engine.update(self._suffix_item(engine))
        engine.sample()  # rebase
        info = engine.cache_info()
        assert info["rebases"] >= 1
        assert info["partial"] == info["rebases"]

    def test_metrics_do_not_perturb_rng(self):
        """Bitwise parity: identical ingest/query sequences with metrics
        on vs off return identical samples — instrumentation never
        consumes randomness."""

        def run(reg):
            engine = self._engine(reg)
            engine.ingest(np.arange(2_000))
            out = [engine.sample() for __ in range(3)]
            engine.ingest(np.arange(2_000, 2_400))
            out += engine.sample_many(5)
            return out

        assert run(MetricsRegistry()) == run(MetricsRegistry(enabled=False))


# ---------------------------------------------------------------------------
# window-bank instrumentation
# ---------------------------------------------------------------------------
class TestWindowBankInstrumentation:
    def test_per_rung_ingest_counts(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            bank = WindowBank([60.0, 300.0], p=2.0, seed=5)
        bank.update_batch(np.arange(500) % 64, np.linspace(0.0, 100.0, 500))
        bank.update(3, 101.0)
        ing = reg.get("repro_windows_ingested_items_total")
        # every rung sees the full stream
        assert ing.total(resolution="60") == 501
        assert ing.total(resolution="300") == 501

    def test_expiry_reclaimed_per_rung(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            bank = WindowBank([10.0], p=2.0, seed=5)
        bank.update_batch(np.arange(100) % 32, np.linspace(0.0, 9.0, 100))
        freed = bank.compact(now=1_000.0)  # everything expired
        assert freed > 0
        exp = reg.get("repro_windows_expired_reclaimed_bytes_total")
        assert exp.total(resolution="10") == freed

    def test_query_view_shares_counters(self):
        """A deep-copied query view reports into the same registry
        children (shared identity), not forked ones."""
        reg = MetricsRegistry()
        with use_registry(reg):
            bank = WindowBank([60.0], p=2.0, seed=5)
        view = bank.spawn_query_rng(np.random.default_rng(1))
        assert view._m_ingested[60.0] is bank._m_ingested[60.0]


# ---------------------------------------------------------------------------
# serving instrumentation
# ---------------------------------------------------------------------------
class TestServingInstrumentation:
    def _serve(self, **kw):
        kw.setdefault("shards", 4)
        kw.setdefault("seed", 0)
        kw.setdefault("ingest_workers", 2)
        return SamplerService(G_CONFIG, **kw)

    def test_served_workload_counts(self):
        items = make_items(5_000)
        with self._serve() as svc:
            svc.submit(items[:3_000], tenant="a")
            svc.submit(items[3_000:], tenant="b")
            svc.flush()
            svc.refresh()
            for __ in range(5):
                svc.sample()
            svc.sample_many(4)
            reg = svc.metrics
            sub = reg.get("repro_serving_submitted_items_total")
            assert sub.total(tenant="a") == 3_000
            assert sub.total(tenant="b") == 2_000
            assert reg.get("repro_serving_applied_items_total").total() == 5_000
            q = reg.get("repro_serving_query_seconds")
            assert q.labels(method="sample", outcome="ok").snapshot()[2] == 5
            assert q.labels(method="sample_many", outcome="ok").snapshot()[2] == 1
            refresh = reg.get("repro_serving_fold_refresh_total")
            assert refresh.total(result="published") >= 1
            stats = svc.stats()
            assert stats["metrics_enabled"] is True
            assert stats["ingest"]["submitted_items"] == 5_000
            assert stats["ingest"]["applied_items"] == 5_000

    def test_rate_limited_counted(self):
        with self._serve(
            tenant_rates={"slow": (10.0, 20.0)},
            refresh_interval=1e9,
            compact_interval=None,
        ) as svc:
            svc.submit(make_items(16), tenant="slow")
            with pytest.raises(RateLimited):
                svc.submit(make_items(16), tenant="slow")
            svc.flush()
            reg = svc.metrics
            assert (
                reg.get("repro_serving_rate_limited_total").total(tenant="slow")
                == 1
            )
            assert svc.stats()["ingest"]["rate_limited"] == 1
            sub_s = reg.get("repro_serving_submit_seconds")
            assert sub_s.labels(outcome="rate_limited").snapshot()[2] == 1
            assert sub_s.labels(outcome="accepted").snapshot()[2] == 1

    def test_metrics_false_is_noop_and_stats_keys_survive(self):
        with self._serve(metrics=False) as svc:
            svc.submit(np.arange(4_000))
            svc.flush()
            svc.refresh()
            svc.sample()
            stats = svc.stats()
            assert stats["metrics_enabled"] is False
            assert svc.metrics.render_prometheus() == ""
            # the pre-obs stats keys survive, fed by the fallback ints
            assert stats["ingest"]["submitted_items"] == 4_000
            assert stats["ingest"]["applied_items"] == 4_000
            assert stats["ingest"]["backpressure_shed"] == 0
            assert stats["ingest"]["rate_limited"] == 0
            assert stats["compaction"]["passes"] >= 0
            assert stats["query"]["served"] == 1

    def test_serialized_bitwise_parity_with_and_without_metrics(self):
        """The serialized-replay contract holds with metrics on, off,
        and against direct engine calls."""
        items = make_items(3_000, seed=9)

        def served(metrics):
            out = []
            with SamplerService(
                G_CONFIG, shards=4, seed=7, serialized=True,
                compact_interval=None, metrics=metrics,
            ) as svc:
                for chunk in np.array_split(items, 3):
                    svc.submit(chunk)
                    out.append(svc.sample())
            return out

        engine = ShardedSamplerEngine(G_CONFIG, shards=4, seed=7)
        direct = []
        for chunk in np.array_split(items, 3):
            engine.ingest(chunk)
            direct.append(engine.sample())
        assert served(True) == direct
        assert served(False) == direct

    def test_stats_registry_matches_component_ints(self):
        """Dual-written counters reconcile exactly with the components'
        internal integers after a concurrent workload."""
        items = make_items(20_000, seed=4, n=1 << 12)
        with self._serve(ingest_workers=4) as svc:
            for lo in range(0, items.size, 2_048):
                svc.submit(items[lo:lo + 2_048])
            svc.flush()
            reg = svc.metrics
            queues = svc._queues
            assert (
                int(reg.get("repro_serving_submitted_items_total").total())
                == queues.submitted_items
            )
            assert (
                int(reg.get("repro_serving_applied_items_total").total())
                == queues.applied_items
            )
            assert int(reg.get("repro_serving_failed_items_total").total()) == 0

    def _served_window_bank(self):
        return SamplerService(
            WB_CONFIG, shards=4, seed=0, ingest_workers=2,
            tenant_rates={"slow": (10.0, 50.0)},
            compact_interval=None,
        )

    def test_full_catalog_present_in_serving_exposition(self):
        """Acceptance: a served window_bank workload (with a forced
        rate-limit) renders every catalogued instrument and passes the
        format check."""
        items = np.arange(3_000) % 512
        ts = np.linspace(0.0, 30.0, 3_000)
        with self._served_window_bank() as svc:
            svc.submit(items, ts, tenant="fast")
            svc.flush()
            svc.refresh()
            svc.submit(np.arange(30), np.linspace(30.0, 31.0, 30), tenant="slow")
            with pytest.raises(RateLimited):
                svc.submit(
                    np.arange(30), np.linspace(31.0, 32.0, 30), tenant="slow"
                )
            svc.sample(horizon=60.0)
            svc.sample_many(3, horizon=60.0)
            text = svc.metrics.render_prometheus()
        assert check_text(text) == []
        for entry in METRIC_CATALOG:
            assert f"# TYPE {entry.name} {entry.type}" in text, entry.name

    def test_catalog_help_consistency(self):
        """Every catalog entry has help text, and the registered
        families carry the catalog's type, labels, and help."""
        assert len(METRIC_CATALOG) == len(CATALOG_HELP)
        with self._served_window_bank() as svc:
            reg = svc.metrics
            for entry in METRIC_CATALOG:
                family = reg.get(entry.name)
                assert family is not None, entry.name
                assert family.type == entry.type, entry.name
                assert family.label_names == entry.labels, entry.name
                assert family.help == entry.meaning, entry.name

    def test_queue_depth_gauges_live(self):
        with self._serve() as svc:
            svc.submit(np.arange(1_000))
            svc.flush()
            svc.refresh()
            reg = svc.metrics
            assert reg.get("repro_serving_queue_depth").total() == 0  # drained
            assert reg.get("repro_serving_queue_pending_items").value == 0
            assert reg.get("repro_serving_fold_generation").value >= 0
            assert reg.get("repro_serving_watermark_skew_latched").value == 0

    def test_apply_and_submit_spans_emitted(self):
        with TraceRecorder() as rec:
            with self._serve(refresh_interval=0, compact_interval=None) as svc:
                svc.submit(np.arange(500))
                svc.flush()
        names = rec.names()
        assert "serving.submit" in names
        assert "serving.apply" in names
