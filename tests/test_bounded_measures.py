"""Tests for the extended measures (Cauchy, Geman–McClure) and the
generic bounded-measure F0 route."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import assert_matches_distribution
from repro.core import (
    BoundedMeasureSampler,
    CauchyMeasure,
    GemanMcClureMeasure,
    TrulyPerfectGSampler,
    TukeySampler,
)
from repro.stats import g_target
from repro.streams import stream_from_frequencies

FREQ = np.array([4, 0, 1, 7, 0, 2, 0, 9, 3, 1])
STREAM = stream_from_frequencies(FREQ, order="random", seed=31)


class TestCauchyMeasure:
    def test_values(self):
        m = CauchyMeasure(tau=2.0)
        assert m(0) == 0.0
        assert m(2) == pytest.approx(2.0 * np.log(2.0))

    @given(c=st.integers(1, 5000))
    @settings(max_examples=60, deadline=None)
    def test_zeta_valid(self, c):
        m = CauchyMeasure(tau=3.0)
        assert m.increment(c) <= m.zeta(None) + 1e-9

    @given(freq=st.lists(st.integers(1, 40), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_fg_bound_certified(self, freq):
        m = CauchyMeasure(tau=1.5)
        fg = sum(m(f) for f in freq)
        assert m.fg_lower_bound(sum(freq)) <= fg + 1e-9

    def test_framework_sampler_exact(self):
        measure = CauchyMeasure(tau=1.0)
        target = g_target(FREQ, measure)

        def run(seed):
            return TrulyPerfectGSampler(
                measure, seed=seed, m_hint=len(STREAM)
            ).run(STREAM)

        assert_matches_distribution(run, target, trials=2500, max_fail_rate=0.05)

    def test_validates_tau(self):
        with pytest.raises(ValueError):
            CauchyMeasure(tau=0.0)


class TestGemanMcClureMeasure:
    def test_values_and_saturation(self):
        m = GemanMcClureMeasure()
        assert m(0) == 0.0
        assert m(1) == pytest.approx(0.25)
        assert m(100) < m.saturation == 0.5

    @given(c=st.integers(1, 1000))
    @settings(max_examples=60, deadline=None)
    def test_zeta_valid(self, c):
        m = GemanMcClureMeasure()
        assert m.increment(c) <= m.zeta(None) + 1e-9

    def test_monotone(self):
        m = GemanMcClureMeasure()
        vals = [m(x) for x in range(20)]
        assert all(b >= a for a, b in zip(vals, vals[1:]))


class TestBoundedMeasureSampler:
    def test_geman_mcclure_distribution(self):
        measure = GemanMcClureMeasure()
        target = g_target(FREQ, measure)

        def run(seed):
            return BoundedMeasureSampler(
                measure, len(FREQ), seed=seed
            ).run(STREAM)

        assert_matches_distribution(run, target, trials=2500, max_fail_rate=0.05)

    def test_tukey_subclass_equivalence(self):
        """TukeySampler is the named BoundedMeasureSampler instantiation."""
        t = TukeySampler(16, tau=4.0, seed=0)
        assert isinstance(t, BoundedMeasureSampler)
        assert t.measure.tau == 4.0

    def test_empty_stream(self):
        s = BoundedMeasureSampler(GemanMcClureMeasure(), 8, seed=0)
        assert s.sample().is_empty

    def test_validates_delta(self):
        with pytest.raises(ValueError):
            BoundedMeasureSampler(GemanMcClureMeasure(), 8, delta=0.0)
