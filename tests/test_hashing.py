"""Tests for hash families (repro.sketches.hashing)."""

import numpy as np
import pytest

from repro.sketches.hashing import MERSENNE_P, KWiseHash, PairwiseHash, random_oracle_hash


class TestKWiseHash:
    def test_range(self):
        h = KWiseHash(4, 100, seed=0)
        vals = h(np.arange(1000))
        assert vals.min() >= 0
        assert vals.max() < 100

    def test_determinism(self):
        h = KWiseHash(3, 50, seed=42)
        assert h(17) == h(17)
        a = h(np.arange(20))
        b = h(np.arange(20))
        assert (a == b).all()

    def test_scalar_matches_vector(self):
        h = KWiseHash(2, 64, seed=1)
        vec = h(np.arange(10))
        for x in range(10):
            assert h(x) == vec[x]

    def test_roughly_uniform(self):
        h = KWiseHash(2, 8, seed=3)
        vals = h(np.arange(8000))
        counts = np.bincount(vals, minlength=8)
        # Each bucket expects 1000; allow generous slack.
        assert counts.min() > 700
        assert counts.max() < 1300

    def test_different_seeds_differ(self):
        a = KWiseHash(2, 1000, seed=0)(np.arange(50))
        b = KWiseHash(2, 1000, seed=1)(np.arange(50))
        assert (a != b).any()

    def test_sign_values(self):
        h = KWiseHash(4, 1 << 16, seed=0)
        signs = h.sign(np.arange(100))
        assert set(np.unique(signs)) <= {-1, 1}

    def test_sign_balanced(self):
        h = KWiseHash(4, 1 << 16, seed=5)
        signs = h.sign(np.arange(4000))
        assert abs(int(signs.sum())) < 400

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            KWiseHash(0, 10)
        with pytest.raises(ValueError):
            KWiseHash(2, 0)
        with pytest.raises(ValueError):
            KWiseHash(2, MERSENNE_P + 1)

    def test_independence_property(self):
        assert KWiseHash(5, 10, seed=0).independence == 5


class TestPairwiseHash:
    def test_is_degree_one(self):
        h = PairwiseHash(100, seed=0)
        assert h.independence == 2


class TestRandomOracle:
    def test_shape_and_range(self):
        h = random_oracle_hash(100, seed=0)
        assert h.shape == (100,)
        assert (h >= 0).all() and (h < 1).all()

    def test_deterministic(self):
        a = random_oracle_hash(50, seed=9)
        b = random_oracle_hash(50, seed=9)
        assert (a == b).all()

    def test_all_distinct(self):
        h = random_oracle_hash(1000, seed=1)
        assert len(np.unique(h)) == 1000
