"""Tests for deterministic sparse recovery (Theorems D.1/D.2 substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches import SparseRecovery, SparsityTester


@st.composite
def sparse_vectors(draw):
    n = draw(st.integers(8, 60))
    k = draw(st.integers(1, 5))
    support_size = draw(st.integers(0, k))
    support = draw(
        st.lists(st.integers(0, n - 1), min_size=support_size,
                 max_size=support_size, unique=True)
    )
    freqs = [
        draw(st.integers(-50, 50).filter(lambda v: v != 0)) for __ in support
    ]
    return n, k, dict(zip(support, freqs))


class TestSparseRecovery:
    @given(sparse_vectors())
    @settings(max_examples=60, deadline=None)
    def test_recovers_k_sparse_exactly(self, case):
        n, k, vec = case
        rec = SparseRecovery(n, k)
        for item, f in vec.items():
            rec.update(item, f)
        result = rec.recover()
        assert result.success
        assert result.as_dict() == vec

    def test_zero_vector(self):
        rec = SparseRecovery(20, 3)
        rec.update(5, 7)
        rec.update(5, -7)
        assert rec.is_zero()
        result = rec.recover()
        assert result.success
        assert result.support == ()

    def test_update_order_irrelevant(self):
        a = SparseRecovery(30, 3)
        b = SparseRecovery(30, 3)
        ups = [(1, 5), (7, -2), (1, -3), (20, 9)]
        for item, d in ups:
            a.update(item, d)
        for item, d in reversed(ups):
            b.update(item, d)
        assert a.recover().as_dict() == b.recover().as_dict()

    def test_detects_overflow_sparsity(self):
        """Vectors with sparsity in (k, 3k] must be rejected."""
        n, k = 64, 3
        rec = SparseRecovery(n, k, moments=4 * k)
        for item in range(2 * k):  # sparsity 2k > k, ≤ 3k
            rec.update(item, 1)
        assert not rec.recover().success

    def test_extend_with_mixed_updates(self):
        rec = SparseRecovery(16, 2)
        rec.extend([3, 3, (5, 4)])
        out = rec.recover()
        assert out.as_dict() == {3: 2, 5: 4}

    def test_validates_params(self):
        with pytest.raises(ValueError):
            SparseRecovery(10, 0)
        with pytest.raises(ValueError):
            SparseRecovery(10, 2, moments=2)
        rec = SparseRecovery(10, 1)
        with pytest.raises(ValueError):
            rec.update(10, 1)


class TestSparsityTester:
    def test_accepts_sparse(self):
        t = SparsityTester(40, 4)
        t.extend([(1, 3), (9, -2), (17, 1)])
        assert t.is_k_sparse()
        assert t.recover().as_dict() == {1: 3, 9: -2, 17: 1}

    def test_rejects_in_gap(self):
        """Sparsity 2k (inside the (k, 3k] detection gap) is rejected."""
        k = 3
        t = SparsityTester(100, k)
        for item in range(2 * k):
            t.update(item, 1)
        assert not t.is_k_sparse()

    def test_rejects_dense(self):
        t = SparsityTester(64, 2)
        for item in range(40):
            t.update(item, 1 + item % 3)
        assert not t.is_k_sparse()

    def test_transitions_with_deletions(self):
        t = SparsityTester(50, 2)
        for item in range(10):
            t.update(item, 1)
        assert not t.is_k_sparse()
        for item in range(8):
            t.update(item, -1)  # back to 2-sparse
        assert t.is_k_sparse()
        assert t.recover().as_dict() == {8: 1, 9: 1}
