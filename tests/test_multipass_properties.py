"""Property-based tests for the multi-pass substrate (Appendix D)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multipass import (
    MultipassL1Sampler,
    MultipassLinfEstimator,
    _chunk_sums,
)
from repro.streams import TurnstileStream


@st.composite
def strict_streams(draw):
    """Small random strict turnstile streams with a nonzero final vector."""
    n = draw(st.integers(4, 24))
    length = draw(st.integers(1, 40))
    freq = np.zeros(n, dtype=np.int64)
    ups = []
    for __ in range(length):
        positive = np.flatnonzero(freq)
        delete = positive.size > 0 and draw(st.booleans())
        if delete:
            idx = draw(st.integers(0, positive.size - 1))
            item = int(positive[idx])
            delta = -draw(st.integers(1, int(freq[item])))
        else:
            item = draw(st.integers(0, n - 1))
            delta = draw(st.integers(1, 5))
        freq[item] += delta
        ups.append((item, delta))
    # Guarantee a nonzero final vector.
    if not freq.any():
        ups.append((0, 1))
        freq[0] += 1
    return TurnstileStream(ups, n), freq


class TestChunkSums:
    @given(strict_streams(), st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_chunk_sums_partition_mass(self, case, chunks):
        ts, freq = case
        (sums,) = _chunk_sums(ts, [(0, ts.n)], chunks)
        assert int(sums.sum()) == int(freq.sum())

    @given(strict_streams())
    @settings(max_examples=40, deadline=None)
    def test_singleton_chunks_recover_frequencies(self, case):
        ts, freq = case
        intervals = [(i, i + 1) for i in range(ts.n)]
        sums = _chunk_sums(ts, intervals, 1)
        recovered = [int(s[0]) for s in sums]
        assert recovered == freq.tolist()


class TestLinfProperties:
    @given(strict_streams(), st.sampled_from([1.5, 2.0, 3.0]))
    @settings(max_examples=30, deadline=None)
    def test_certified_on_random_streams(self, case, p):
        ts, freq = case
        est = MultipassLinfEstimator(ts, n=ts.n, p=p, gamma=0.5)
        z = est.estimate()
        linf = int(freq.max())
        theta = float(freq.sum()) / ts.n ** (1.0 - 1.0 / p)
        assert z >= min(linf, linf) - 1e-9
        assert z >= linf or z >= theta - 1e-9
        assert z <= max(linf, theta) + 1e-9


class TestL1Properties:
    @given(strict_streams())
    @settings(max_examples=25, deadline=None)
    def test_sampled_item_has_positive_frequency(self, case):
        ts, freq = case
        s = MultipassL1Sampler(ts, n=ts.n, gamma=0.5, seed=0)
        res = s.sample()
        assert res.is_item
        assert freq[res.item] > 0

    @given(strict_streams(), st.sampled_from([0.25, 0.5, 1.0]))
    @settings(max_examples=25, deadline=None)
    def test_pass_count_bounded_by_inverse_gamma(self, case, gamma):
        ts, __ = case
        s = MultipassL1Sampler(ts, n=ts.n, gamma=gamma, seed=1)
        s.sample()
        # Descent depth is ⌈log_{chunks}(n)⌉ ≤ ⌈1/γ⌉ + 1.
        assert s.passes_used <= int(np.ceil(1.0 / gamma)) + 1
