"""The statistical audit plane: shadow truth, sequential monitor,
sensitivity (an injected biased sampler is flagged within the draw
budget), specificity (every correct registry kind runs clean at the
configured alpha), health probes, the flight recorder, and the trace
satellites (Chrome export, dropped-events counter)."""

import copy
import json
import math
import zipfile

import numpy as np
import pytest

import repro.obs.trace as trace_mod
from repro.core.types import SampleResult
from repro.engine import build_sampler
from repro.engine.state import load_state, save_state
from repro.obs.audit import (
    AuditConfig,
    Auditor,
    SequentialMonitor,
    ShadowTruth,
    audit_profile,
)
from repro.obs.health import (
    BurnRateTracker,
    HealthChecker,
    ProbeResult,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.perfect.biased import register_biased_kind
from repro.serving import SamplerService
from repro.serving.cli import main as cli_main
from repro.stats.distance import tv_upper_bound

N = 64

#: Every registry kind (all 14), with test-scale configs.  The engine
#: can serve all but the count-based sliding windows (mergeable=False),
#: which are audited component-level below.
SERVED_CONFIGS = {
    "g": {"kind": "g", "measure": {"name": "huber"}, "instances": 16},
    "lp": {"kind": "lp", "p": 2.0, "n": N, "instances": 16},
    "f0": {"kind": "f0", "n": N},
    "oracle-f0": {"kind": "oracle-f0", "n": N},
    "algorithm5-f0": {"kind": "algorithm5-f0", "n": N},
    "pool": {"kind": "pool", "instances": 8},
    "bounded": {"kind": "bounded", "measure": {"name": "tukey"}, "n": N},
    "tw_g": {"kind": "tw_g", "measure": {"name": "huber"}, "horizon": 20.0,
             "instances": 12},
    "tw_lp": {"kind": "tw_lp", "p": 2.0, "horizon": 20.0, "instances": 12},
    "tw_f0": {"kind": "tw_f0", "n": N, "horizon": 20.0},
    "window_bank": {"kind": "window_bank", "resolutions": [10.0, 40.0],
                    "p": 2.0, "n": N, "instances": 8},
}
SW_CONFIGS = {
    "sw-g": {"kind": "sw-g", "measure": {"name": "huber"}, "window": 400},
    "sw-lp": {"kind": "sw-lp", "p": 2.0, "window": 400},
    "sw-f0": {"kind": "sw-f0", "n": N, "window": 400},
}
TIMED_KINDS = {"tw_g", "tw_lp", "tw_f0", "window_bank"}

RNG = np.random.default_rng(11)
ITEMS = RNG.integers(0, N, size=6000).astype(np.int64)
TS = np.sort(RNG.uniform(0.0, 150.0, size=6000))

AUDIT = {"interval": 0.0, "draws": 512, "alpha": 0.01}


@pytest.fixture(scope="module", autouse=True)
def _scrub_biased_kind():
    """``register_biased_kind()`` writes to the process-global sampler
    and audit-profile registries; scrub both afterwards so registry
    coverage tests in other modules keep seeing only built-in kinds."""
    yield
    from repro.engine import registry as engine_registry
    from repro.obs import audit as audit_mod

    engine_registry._SAMPLERS.pop("biased_g", None)
    audit_mod._PROFILES.pop("biased_g", None)


def _served(config, **kw):
    """A deterministic audited service: no ticker (manual audit ticks),
    synchronous refresh."""
    kw.setdefault("shards", 4)
    kw.setdefault("seed", 3)
    kw.setdefault("ingest_workers", 2)
    kw.setdefault("refresh_interval", 0)
    kw.setdefault("compact_interval", None)
    kw.setdefault("audit", dict(AUDIT))
    return SamplerService(config, **kw)


def _ingest(service, kind):
    ts = TS if kind in TIMED_KINDS else None
    service.submit(ITEMS, ts)
    service.flush()
    service.refresh()


# -- shadow truth ------------------------------------------------------------


class TestShadowTruth:
    def test_exact_frequency_target(self):
        profile = audit_profile({"kind": "lp", "p": 2.0, "n": N})
        truth = ShadowTruth(profile, AuditConfig())
        truth.feed(ITEMS[:3000])
        truth.feed(ITEMS[3000:], tenant="t2")
        target = truth.target()
        assert target.mode == "exact"
        counts = np.bincount(ITEMS, minlength=N).astype(np.float64)
        support = np.flatnonzero(counts)
        expected = counts[support] ** 2.0
        expected /= expected.sum()
        assert np.array_equal(target.support, support)
        assert np.allclose(target.probs, expected)
        assert sum(truth.tenant_items().values()) == ITEMS.size

    def test_distinct_target_is_uniform(self):
        truth = ShadowTruth(audit_profile({"kind": "f0", "n": N}), AuditConfig())
        truth.feed(ITEMS)
        target = truth.target()
        k = np.unique(ITEMS).size
        assert target.support.size == k
        assert np.allclose(target.probs, 1.0 / k)

    def test_count_window_ring(self):
        profile = audit_profile({"kind": "sw-lp", "p": 2.0, "window": 100})
        truth = ShadowTruth(profile, AuditConfig())
        fed = 0
        for lo in range(0, 1000, 37):  # uneven chunks cross the window
            truth.feed(ITEMS[lo:lo + 37])
            fed = lo + 37
        target = truth.target()
        live = ITEMS[fed - 100:fed]
        counts = np.bincount(live, minlength=N).astype(np.float64)
        support = np.flatnonzero(counts)
        expected = counts[support] ** 2.0
        expected /= expected.sum()
        assert np.array_equal(target.support, support)
        assert np.allclose(target.probs, expected)

    def test_time_window_expiry_is_strict(self):
        profile = audit_profile({"kind": "tw_f0", "n": N, "horizon": 20.0})
        truth = ShadowTruth(profile, AuditConfig())
        truth.feed(ITEMS, TS)
        now = float(TS[-1])
        target = truth.target(now=now)
        live = ITEMS[TS > now - 20.0]  # strict: ts == now - H is expired
        assert np.array_equal(target.support, np.unique(live))

    def test_time_window_requires_timestamps(self):
        profile = audit_profile({"kind": "tw_f0", "n": N, "horizon": 20.0})
        truth = ShadowTruth(profile, AuditConfig())
        with pytest.raises(ValueError, match="timestamps"):
            truth.feed(ITEMS)

    def test_demotes_to_sketch_past_universe_cap(self):
        profile = audit_profile({"kind": "lp", "p": 1.0, "n": 4096})
        cfg = AuditConfig(exact_universe_max=32, mg_capacity=64)
        truth = ShadowTruth(profile, cfg)
        truth.feed(np.arange(512, dtype=np.int64).repeat(8))
        target = truth.target()
        assert truth.mode == "sketch"
        assert target.mode in ("sketch", "empty")
        if target.mode == "sketch":
            # Certified upper bounds: each heavy item's true probability
            # (f=8 of m=4096, p_true = 8/4096) must sit under p_hi.
            assert np.all(target.p_hi >= 8.0 / 4096.0)

    def test_sketch_mode_cannot_audit_distinct_kinds(self):
        profile = audit_profile({"kind": "f0", "n": 4096})
        cfg = AuditConfig(exact_universe_max=32)
        truth = ShadowTruth(profile, cfg)
        truth.feed(np.arange(512, dtype=np.int64))
        target = truth.target()
        assert target.mode == "unsupported"

    def test_unknown_kind_is_unsupported(self):
        assert audit_profile({"kind": "no-such-kind"}).category == "unsupported"
        assert audit_profile({"kind": "pool"}).category == "unsupported"


# -- sequential monitor ------------------------------------------------------


class TestSequentialMonitor:
    def test_e_process_calibrator_math(self):
        monitor = SequentialMonitor(alpha=0.05, kappa=0.5)
        monitor.update(0.25)
        # e(p) = κ p^(κ-1) = 0.5 * 0.25^-0.5 = 1.0
        assert monitor.e_value == pytest.approx(1.0)
        monitor.update(0.01)
        assert monitor.e_value == pytest.approx(0.5 * 0.01 ** -0.5)

    def test_flags_at_ville_threshold_and_latches(self):
        monitor = SequentialMonitor(alpha=0.01)
        assert not monitor.update(1e-4)  # e = 0.5/sqrt(1e-4) = 50 < 100
        assert monitor.update(1e-4)  # product 2500 crosses 1/alpha = 100
        assert monitor.flagged
        monitor.update(1.0)  # evidence can shrink, the flag cannot
        assert monitor.flagged

    def test_zero_p_value_is_floored_not_fatal(self):
        monitor = SequentialMonitor(alpha=0.01)
        assert monitor.update(0.0)
        assert monitor.flagged

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SequentialMonitor(alpha=0.0)
        with pytest.raises(ValueError):
            SequentialMonitor(alpha=0.5, kappa=1.0)


def test_tv_upper_bound_dominates_observed():
    assert tv_upper_bound(0.1, 64, 1024) >= 0.1
    assert tv_upper_bound(0.9, 64, 16) == 1.0  # clamped
    assert tv_upper_bound(0.0, 4, 10**9) < 0.01
    with pytest.raises(ValueError):
        tv_upper_bound(0.1, 64, 100, delta=0.0)


# -- specificity: every correct kind runs clean ------------------------------


DISTINCT_KINDS = {"f0", "oracle-f0", "algorithm5-f0", "sw-f0", "tw_f0"}


@pytest.mark.parametrize("kind", sorted(SERVED_CONFIGS))
def test_served_kinds_run_clean(kind):
    with _served(SERVED_CONFIGS[kind]) as service:
        _ingest(service, kind)
        for __ in range(3):
            event = service.audit_tick()
        auditor = service.auditor
        assert not auditor.flagged
        if kind == "pool":
            # No sample() hook: reported unsupported, never judged.
            assert auditor.verdict == -1
            assert event.result == "unsupported"
        elif kind in DISTINCT_KINDS:
            # Membership + conditional uniformity over drawn categories.
            assert auditor.verdict == 1
            assert event.result == "evaluated"
            assert event.tv_bound is not None and 0 <= event.tv_bound <= 1
            assert "conditional-uniform" in event.detail
        else:
            # Streaming frequency kinds hold state-fixed candidates:
            # the audit certifies live-support membership only.
            assert auditor.verdict == 1
            assert event.result == "evaluated"
            assert "membership" in event.detail
        # Verdict is mirrored into the catalog gauge.
        gauge = service.metrics.get("repro_audit_verdict")
        assert gauge.value == auditor.verdict


@pytest.mark.parametrize("kind", sorted(SW_CONFIGS))
def test_sliding_window_kinds_run_clean_component_level(kind):
    # The sharded engine rejects mergeable=False kinds, so count-based
    # windows are audited by feeding a bare sampler and the auditor the
    # same stream in lockstep.
    sampler = build_sampler({**SW_CONFIGS[kind], "seed": 5})
    registry = MetricsRegistry()
    auditor = Auditor(SW_CONFIGS[kind], AuditConfig(**AUDIT), metrics=registry)
    for lo in range(0, ITEMS.size, 500):
        chunk = ITEMS[lo:lo + 500]
        sampler.update_batch(chunk)
        auditor.feed(chunk)
    for __ in range(3):
        draws = [sampler.sample() for __ in range(512)]
        event = auditor.evaluate(draws)
        assert event.result == "evaluated"
    assert not auditor.flagged
    assert auditor.verdict == 1


# -- sensitivity: the injected biased sampler is flagged ---------------------


class TestSensitivity:
    BIASED = {
        "kind": "biased_g", "measure": {"name": "huber"}, "n": N,
        "gamma": 0.25, "bias_items": [0, 1, 2, 3],
    }

    def test_biased_sampler_flagged_within_draw_budget(self):
        register_biased_kind()
        with _served(self.BIASED, seed=1) as service:
            _ingest(service, "biased_g")
            while not service.auditor.flagged:
                service.audit_tick()
                assert service.auditor.draws_total <= 20_000, (
                    "audit failed to flag a gamma=0.25 sampler within "
                    "the 20k-draw budget"
                )
            assert service.auditor.verdict == 0
            assert service.metrics.get("repro_audit_verdict").value == 0
            # A flagged audit takes readiness away but not liveness.
            report = service.health()
            assert report.live and not report.ready
            assert report.probe("audit").status == "fail"

    def test_unbiased_control_runs_clean(self):
        register_biased_kind()
        with _served(dict(self.BIASED, gamma=0.0), seed=1) as service:
            _ingest(service, "biased_g")
            for __ in range(6):
                assert service.audit_tick().result == "evaluated"
            assert service.auditor.verdict == 1


# -- race guards -------------------------------------------------------------


def test_audit_tick_race_guards():
    with _served(SERVED_CONFIGS["lp"]) as service:
        event = service.audit_tick()
        assert event.result in ("skipped_empty", "skipped_sparse")
        _ingest(service, "lp")
        assert service.audit_tick().result == "evaluated"
        # A truth feed between the draw capture and the judgment is a
        # discard, never a verdict.
        version = service.auditor.truth_version
        service.auditor.feed(ITEMS[:10])
        assert service.auditor.truth_version == version + 1


def test_audit_requires_config_not_engine():
    from repro.engine import ShardedSamplerEngine

    engine = ShardedSamplerEngine(SERVED_CONFIGS["lp"], shards=2, seed=0)
    with pytest.raises(ValueError, match="prebuilt engine"):
        SamplerService(engine, audit=True, refresh_interval=0,
                       compact_interval=None)


def test_audit_history_and_status():
    with _served(SERVED_CONFIGS["lp"]) as service:
        _ingest(service, "lp")
        service.audit_tick()
        status = service.audit_status()
        assert status["enabled"] and status["supported"]
        assert status["verdict"] == 1
        assert status["history"][-1]["result"] == "evaluated"
        assert status["draws_total"] == 512
    no_audit = SamplerService(SERVED_CONFIGS["lp"], shards=2, seed=0,
                              refresh_interval=0, compact_interval=None)
    with no_audit:
        assert no_audit.audit_status() == {"enabled": False}
        assert no_audit.audit_tick() is None
        # Catalog families exist (at -1 / zero) even with the plane off.
        assert no_audit.metrics.get("repro_audit_verdict").value == -1


# -- health plane ------------------------------------------------------------


class TestHealth:
    def test_healthy_service_reports_ready(self):
        with _served(SERVED_CONFIGS["lp"]) as service:
            _ingest(service, "lp")
            service.audit_tick()
            report = service.health()
            assert report.live and report.ready
            names = {p.name for p in report.probes}
            assert {"service_open", "worker_errors", "queue_saturation",
                    "refresh_latch", "fold_staleness", "audit",
                    "slo_burn"} <= names
            gauge = service.metrics.get("repro_health_status")
            assert gauge.labels(probe="ready").value == 1.0
            assert gauge.labels(probe="audit").value == 1.0

    def test_closed_service_is_not_live(self):
        service = _served(SERVED_CONFIGS["lp"])
        service.close()
        report = service.health()  # must not raise on a closed service
        assert not report.live and not report.ready
        assert report.probe("service_open").status == "fail"

    def test_raising_probe_is_a_failing_probe(self):
        def boom():
            raise RuntimeError("probe exploded")

        checker = HealthChecker({"ok": lambda: ProbeResult("ok", "pass"),
                                 "bad": boom})
        report = checker.check()
        assert report.probe("bad").status == "fail"
        assert "probe exploded" in report.probe("bad").detail
        assert not report.ready
        assert report.live  # neither probe is a liveness probe

    def test_burn_rate_multi_window_rule(self):
        clock = [0.0]
        tracker = BurnRateTracker(
            0.1, slo=0.9, short_window=10.0, long_window=60.0,
            clock=lambda: clock[0],
        )
        registry = MetricsRegistry()
        family = registry.histogram("t_seconds", buckets=(0.1, 1.0))
        # 100% of observations over the objective → burn = 1 / (1-0.9) = 10x
        for t in range(0, 140, 5):
            clock[0] = float(t)
            family.observe(0.5)
            tracker.observe(family)
        probe = tracker.probe()
        assert probe.status == "warn"  # 10x: over warn (6), under fail (14.4)
        assert probe.value == pytest.approx(10.0)

    def test_burn_rate_insufficient_history_passes(self):
        tracker = BurnRateTracker(0.1)
        assert tracker.probe().status == "pass"


# -- flight recorder ---------------------------------------------------------


class TestFlightRecorder:
    def test_bundle_layout_and_shard_restorability(self, tmp_path):
        path = tmp_path / "bundle.zip"
        with _served(SERVED_CONFIGS["lp"]) as service:
            _ingest(service, "lp")
            service.audit_tick()
            manifest = service.dump(path)
            samplers = service.engine.samplers
        assert manifest["errors"] == {}
        with zipfile.ZipFile(path) as zf:
            names = set(zf.namelist())
            for required in ("manifest.json", "config.json", "stats.json",
                             "metrics.json", "metrics.prom", "health.json",
                             "audit.json", "trace.jsonl", "environment.json"):
                assert required in names
            shard_blobs = sorted(n for n in names if n.startswith("shards/"))
            assert len(shard_blobs) == 4
            config = json.loads(zf.read("config.json"))
            assert config["kind"] == "lp"
            audit = json.loads(zf.read("audit.json"))
            assert audit["verdict"] == 1
            health = json.loads(zf.read("health.json"))
            assert health["ready"] is True
            # The shard envelopes are real save_state bytes: they
            # restore, bitwise round-trip, onto a shard-shaped sampler.
            for i, name in enumerate(shard_blobs):
                blob = zf.read(name)
                clone = copy.deepcopy(samplers[i])
                load_state(clone, blob)
                assert save_state(clone) == save_state(samplers[i])

    def test_bundle_survives_broken_sections(self, tmp_path):
        path = tmp_path / "bundle.zip"
        with _served(SERVED_CONFIGS["lp"]) as service:
            service.stats = None  # break one section
            from repro.obs.flight import write_bundle

            manifest = write_bundle(service, path)
        assert "stats.json" in manifest["errors"]
        assert "config.json" in manifest["entries"]


# -- trace satellites --------------------------------------------------------


class TestTraceSatellites:
    def _traced(self):
        tracer = Tracer(capacity=64)
        with tracer.span("unit.op", shard=3):
            pass
        with pytest.raises(KeyError):
            with tracer.span("unit.err"):
                raise KeyError("x")
        return tracer

    def test_span_records_thread_name(self):
        tracer = self._traced()
        event = tracer.events()[0]
        assert event.thread  # current thread's name
        assert '"thread"' in event.to_json()

    def test_export_chrome_is_perfetto_shaped(self, tmp_path):
        tracer = self._traced()
        out = tmp_path / "trace.json"
        assert tracer.export_chrome(out) == 2
        payload = json.loads(out.read_text())
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        metas = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert len(spans) == 2 and metas
        assert spans[0]["name"] == "unit.op"
        assert spans[0]["args"] == {"shard": 3, "outcome": "ok"}
        assert spans[1]["args"]["outcome"] == "KeyError"
        assert spans[0]["ts"] == pytest.approx(
            tracer.events()[0].start_ns / 1e3
        )

    def test_dropped_counter_is_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_trace_dropped_total")
        tracer = Tracer(capacity=4)
        tracer.bind_dropped_counter(counter)
        for i in range(10):
            with tracer.span(f"op{i}"):
                pass
        # Each record beyond capacity evicts exactly one event.
        assert counter.value == 6
        assert tracer.dropped_hint == 6

    def test_trace_module_cli(self, tmp_path, capsys):
        tracer = self._traced()
        jsonl = tmp_path / "trace.jsonl"
        tracer.export_jsonl(jsonl)
        assert trace_mod.main([str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "unit.op" in out and "unit.err" in out
        chrome = tmp_path / "chrome.json"
        assert trace_mod.main([str(jsonl), "--chrome", str(chrome)]) == 0
        payload = json.loads(chrome.read_text())
        assert any(e["ph"] == "X" for e in payload["traceEvents"])


# -- derived quantiles -------------------------------------------------------


def test_stats_carries_derived_latency_quantiles():
    with _served(SERVED_CONFIGS["lp"]) as service:
        _ingest(service, "lp")
        for __ in range(8):
            service.sample()
        latency = service.stats()["latency"]
        q = latency["query_seconds"]
        assert q["count"] >= 8
        assert 0 < q["p50"] <= q["p90"] <= q["p99"]
        assert "bucket-resolution" in latency["note"]


def test_merged_percentiles_aggregates_children():
    registry = MetricsRegistry()
    family = registry.histogram("h_seconds", labels=("lane",))
    for v in (0.01, 0.01, 0.01, 10.0):
        family.labels(lane="a").observe(v)
    family.labels(lane="b").observe(10.0)
    merged = family.merged_percentiles()
    assert merged["count"] == 5
    assert merged["p50"] < 1.0 < merged["p99"]
    with pytest.raises(ValueError):
        registry.counter("c_total").merged_percentiles()


# -- CLI ---------------------------------------------------------------------


class TestServeCLI:
    LP = '{"kind": "lp", "p": 2.0, "n": 64}'

    def test_health_exits_zero_and_reports(self, capsys):
        code = cli_main([
            "health", "--config", self.LP, "--items", "4000",
            "--universe", "64", "--audit-ticks", "2", "--json",
        ])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["healthy"] is True
        assert payload["report"]["ready"] is True
        assert payload["audit"]["verdict"] == 1

    def test_health_flags_biased_and_dumps_bundle(self, tmp_path, capsys):
        register_biased_kind()
        bundle = tmp_path / "flight.zip"
        config = json.dumps({
            "kind": "biased_g", "measure": {"name": "huber"}, "n": 64,
            "gamma": 0.25, "bias_items": [0, 1, 2, 3],
        })
        code = cli_main([
            "health", "--config", config, "--items", "4000",
            "--universe", "64", "--audit-ticks", "2",
            "--dump-on-fail", str(bundle),
        ])
        capsys.readouterr()
        assert code == 1
        with zipfile.ZipFile(bundle) as zf:
            audit = json.loads(zf.read("audit.json"))
            assert audit["flagged"] is True

    def test_dump_writes_bundle(self, tmp_path, capsys):
        out = tmp_path / "bundle.zip"
        code = cli_main([
            "dump", "--config", self.LP, "--items", "4000",
            "--universe", "64", "--out", str(out),
        ])
        stdout = capsys.readouterr().out
        assert code == 0 and "bundle entries" in stdout
        with zipfile.ZipFile(out) as zf:
            assert "manifest.json" in zf.namelist()

    def test_stats_json_carries_derived_quantiles(self, capsys):
        code = cli_main([
            "stats", "--config", self.LP, "--format", "json",
            "--items", "4000", "--universe", "64",
        ])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)  # strict JSON: NaN must be sanitized
        assert "derived_quantiles" in payload
        assert payload["derived_quantiles"]["query_seconds"]["count"] > 0
        assert "repro_audit_verdict" in payload["metrics"]
