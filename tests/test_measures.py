"""Tests for measure functions and their certified bounds."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.measures import (
    ConcaveMeasure,
    FairMeasure,
    HuberMeasure,
    L1L2Measure,
    LpMeasure,
    TukeyMeasure,
)

BOUNDED_MEASURES = [
    LpMeasure(0.5),
    LpMeasure(1.0),
    L1L2Measure(),
    FairMeasure(2.0),
    HuberMeasure(1.5),
    ConcaveMeasure(lambda x: math.log2(1 + x), "log2(1+x)"),
]


class TestMeasureBasics:
    @pytest.mark.parametrize("measure", BOUNDED_MEASURES, ids=lambda m: m.name)
    def test_zero_at_zero(self, measure):
        assert measure(0) == pytest.approx(0.0)

    @pytest.mark.parametrize("measure", BOUNDED_MEASURES, ids=lambda m: m.name)
    def test_non_decreasing(self, measure):
        vals = [measure(x) for x in range(0, 30)]
        assert all(b >= a - 1e-12 for a, b in zip(vals, vals[1:]))

    @pytest.mark.parametrize("measure", BOUNDED_MEASURES, ids=lambda m: m.name)
    def test_symmetric(self, measure):
        for x in [1, 3, 7.5]:
            assert measure(x) == pytest.approx(measure(-x))

    @pytest.mark.parametrize("measure", BOUNDED_MEASURES, ids=lambda m: m.name)
    @given(c=st.integers(1, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_global_zeta_bounds_increments(self, measure, c):
        assert measure.increment(c) <= measure.zeta(None) + 1e-9

    @pytest.mark.parametrize("measure", BOUNDED_MEASURES, ids=lambda m: m.name)
    def test_increment_validates(self, measure):
        with pytest.raises(ValueError):
            measure.increment(0)

    @pytest.mark.parametrize("measure", BOUNDED_MEASURES, ids=lambda m: m.name)
    @given(freq=st.lists(st.integers(1, 50), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_fg_lower_bound_certified(self, measure, freq):
        """F̂_G ≤ F_G for every frequency vector with total m."""
        m = sum(freq)
        fg = sum(measure(f) for f in freq)
        assert measure.fg_lower_bound(m) <= fg + 1e-9


class TestLpMeasure:
    def test_values(self):
        assert LpMeasure(2.0)(3) == pytest.approx(9.0)
        assert LpMeasure(0.5)(4) == pytest.approx(2.0)

    def test_zeta_needs_linf_for_p_above_one(self):
        m = LpMeasure(2.0)
        with pytest.raises(ValueError):
            m.zeta(None)
        assert m.needs_linf_bound()

    @given(z=st.integers(1, 1000), c_frac=st.floats(0.01, 1.0))
    @settings(max_examples=80, deadline=None)
    def test_zeta_with_linf_bound_is_valid(self, z, c_frac):
        m = LpMeasure(1.7)
        c = max(1, int(z * c_frac))
        assert m.increment(c) <= m.zeta(z) + 1e-9

    def test_p_one_zeta_global(self):
        assert LpMeasure(1.0).zeta(None) == 1.0
        assert not LpMeasure(1.0).needs_linf_bound()

    def test_sub_one_fg_bound(self):
        # F_p ≥ m^p for p < 1 (subadditivity).
        assert LpMeasure(0.5).fg_lower_bound(100) == pytest.approx(10.0)

    def test_validates_p(self):
        with pytest.raises(ValueError):
            LpMeasure(0.0)


class TestMEstimators:
    def test_l1l2_value(self):
        m = L1L2Measure()
        assert m(1) == pytest.approx(2 * (math.sqrt(1.5) - 1))
        assert m.zeta(None) == pytest.approx(math.sqrt(2))

    def test_fair_value(self):
        m = FairMeasure(tau=2.0)
        assert m(1) == pytest.approx(2.0 - 4.0 * math.log(1.5))
        assert m.zeta(None) == 2.0

    def test_huber_branches(self):
        m = HuberMeasure(tau=2.0)
        assert m(1) == pytest.approx(0.25)  # quadratic branch
        assert m(5) == pytest.approx(4.0)  # linear branch
        # Continuity at the knee.
        assert m(2.0) == pytest.approx(1.0)

    def test_tukey_saturates(self):
        m = TukeyMeasure(tau=3.0)
        assert m(3.0) == pytest.approx(m.saturation)
        assert m(100.0) == pytest.approx(m.saturation)
        assert m(1.0) < m.saturation

    @given(c=st.integers(1, 500))
    @settings(max_examples=50, deadline=None)
    def test_tukey_zeta_valid(self, c):
        m = TukeyMeasure(tau=7.0)
        assert m.increment(c) <= m.zeta(None) + 1e-9

    def test_validate_tau(self):
        for cls in (FairMeasure, HuberMeasure, TukeyMeasure):
            with pytest.raises(ValueError):
                cls(tau=0.0)


class TestConcaveMeasure:
    def test_wraps_function(self):
        m = ConcaveMeasure(lambda x: math.sqrt(x), "sqrt")
        assert m(4) == pytest.approx(2.0)
        assert m.zeta(None) == pytest.approx(1.0)
        # Concave bound: F_G ≥ G(m).
        assert m.fg_lower_bound(16) == pytest.approx(4.0)

    def test_validates_g0(self):
        with pytest.raises(ValueError):
            ConcaveMeasure(lambda x: x + 1)

    def test_validates_increasing(self):
        with pytest.raises(ValueError):
            ConcaveMeasure(lambda x: 0.0)
