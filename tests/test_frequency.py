"""Tests for ground-truth trackers (repro.streams.frequency)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams import FrequencyVector, WindowedFrequency


class TestFrequencyVector:
    def test_basic_updates(self):
        fv = FrequencyVector(4)
        fv.extend([0, 1, 1, 3])
        assert fv[0] == 1
        assert fv[1] == 2
        assert fv[2] == 0
        assert fv.total == 4
        assert fv.f0() == 3
        assert fv.support() == [0, 1, 3]

    def test_signed_updates_and_cancellation(self):
        fv = FrequencyVector(3)
        fv.update(1, 5)
        fv.update(1, -5)
        assert fv[1] == 0
        assert fv.f0() == 0

    def test_validates_item(self):
        fv = FrequencyVector(2)
        with pytest.raises(ValueError):
            fv.update(2)

    def test_moments(self):
        fv = FrequencyVector(3)
        fv.extend([0, 0, 1])
        assert fv.fp(2) == pytest.approx(5.0)
        assert fv.fp(1) == pytest.approx(3.0)
        assert fv.linf() == 2

    def test_f_g(self):
        fv = FrequencyVector(3)
        fv.extend([0, 0, 1])
        assert fv.f_g(lambda x: x * x) == pytest.approx(5.0)

    @given(st.lists(st.integers(0, 7), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_matches_bincount(self, items):
        fv = FrequencyVector(8)
        fv.extend(items)
        assert fv.vector().tolist() == np.bincount(items, minlength=8).tolist()


class TestWindowedFrequency:
    def test_expiry(self):
        wf = WindowedFrequency(3, window=2)
        wf.extend([0, 1, 2])
        assert wf[0] == 0  # expired
        assert wf[1] == 1
        assert wf[2] == 1
        assert wf.active_count == 2

    def test_validates_window(self):
        with pytest.raises(ValueError):
            WindowedFrequency(2, window=0)

    @given(st.lists(st.integers(0, 5), max_size=50), st.integers(1, 10))
    @settings(max_examples=60, deadline=None)
    def test_matches_suffix_bincount(self, items, window):
        wf = WindowedFrequency(6, window=window)
        wf.extend(items)
        expected = np.bincount(items[-window:] if items else [], minlength=6)
        assert wf.vector().tolist() == expected.tolist()

    def test_moments_over_window(self):
        wf = WindowedFrequency(4, window=3)
        wf.extend([0, 0, 0, 1, 1, 2])
        # window = [1, 1, 2]
        assert wf.fp(2) == pytest.approx(5.0)
        assert wf.f0() == 2
        assert wf.linf() == 2
