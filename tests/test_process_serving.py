"""Process-parallel serving — transport, bitwise replay, and crash tests.

The contracts the process ingest plane must keep:

* **wire safety** — frames are RPRS snapshot trees (never pickles), and
  bytes leaves round-trip through the codec exactly;
* **bitwise equality** — serialized process-mode serving replays a whole
  interleaved ingest/query sequence bitwise-identically to direct
  engine calls, for untimed, timed, and F0 kinds alike;
* **crash honesty** — a worker dying mid-batch propagates a clean
  error, latches the service unhealthy, and never silently drops an
  accepted batch; a worker dying idle (nothing in flight, mirror
  caught up) restarts losslessly and the service keeps serving;
* **reader-view pooling** — N readers on one published generation cost
  one fold copy, not N.
"""

import multiprocessing
import threading
import time

import numpy as np
import pytest

from repro.engine import ShardedSamplerEngine, state_to_bytes
from repro.lifecycle.codec import state_from_bytes
from repro.obs.metrics import MetricsRegistry
from repro.serving import SamplerService, ServiceClosed
from repro.serving.transport import FrameConnection, decode_frame, encode_frame
from repro.streams.generators import zipf_stream
from repro.streams.timestamped import uniform_arrivals

G_CONFIG = {"kind": "g", "measure": {"name": "huber"}, "instances": 16}
TW_CONFIG = {"kind": "tw_g", "measure": {"name": "huber"}, "horizon": 30.0,
             "instances": 8}
F0_CONFIG = {"kind": "f0", "n": 1 << 10}


def make_items(m: int, seed: int = 3, n: int = 1 << 10) -> np.ndarray:
    return np.asarray(zipf_stream(n, m, alpha=1.2, seed=seed).items)


def _wait_until(pred, timeout: float = 10.0, interval: float = 0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if pred():
            return True
        time.sleep(interval)
    return pred()


# ---------------------------------------------------------------------------
# Transport and codec
# ---------------------------------------------------------------------------
class TestTransport:
    def test_codec_bytes_leaves_round_trip(self):
        tree = {
            "type": "state",
            "shards": {
                "0": {"epoch": 3, "state": b"\x00\x01RPRS-nested\xff"},
                "1": {"epoch": 1, "state": b""},
            },
            "arr": np.arange(7, dtype=np.int64),
        }
        back = state_from_bytes(state_to_bytes(tree))
        assert back["type"] == "state"
        assert back["shards"]["0"]["state"] == b"\x00\x01RPRS-nested\xff"
        assert back["shards"]["1"]["state"] == b""
        np.testing.assert_array_equal(back["arr"], tree["arr"])

    def test_decode_rejects_untyped_frames(self):
        with pytest.raises(ValueError, match="missing type"):
            decode_frame(encode_frame({"shard": 0}))

    def test_frame_connection_meters_traffic(self):
        reg = MetricsRegistry()
        a_raw, b_raw = multiprocessing.Pipe(duplex=True)
        a = FrameConnection(a_raw, metrics=reg)
        b = FrameConnection(b_raw, metered=False)
        try:
            n = a.send({"type": "ping"})
            assert b.recv() == {"type": "ping"}
            b.send({"type": "pong", "payload": np.zeros(16)})
            reply = a.recv()
            assert reply["type"] == "pong"
            frames = reg.get("repro_serving_ipc_frames_total")
            nbytes = reg.get("repro_serving_ipc_bytes_total")
            assert int(frames.labels(direction="send").value) == 1
            assert int(frames.labels(direction="recv").value) == 1
            assert int(nbytes.labels(direction="send").value) == n
            assert int(nbytes.labels(direction="recv").value) > 0
        finally:
            a.close()
            b.close()


# ---------------------------------------------------------------------------
# Bitwise replay through worker processes
# ---------------------------------------------------------------------------
class TestProcessBitwise:
    @pytest.mark.parametrize("config", [G_CONFIG, F0_CONFIG],
                             ids=["g", "f0"])
    def test_serialized_process_mode_equals_direct_engine(self, config):
        items = make_items(6_000)
        engine = ShardedSamplerEngine(config, shards=4, seed=7)
        with SamplerService(
            config, shards=4, seed=7, serialized=True,
            workers_mode="process", ingest_workers=2, compact_interval=None,
        ) as svc:
            for lo in range(0, items.size, 1_500):
                batch = items[lo:lo + 1_500]
                svc.submit(batch)
                engine.ingest(batch)
                assert svc.sample() == engine.sample()
                assert svc.sample_many(5) == engine.sample_many(5)
            assert state_to_bytes(svc.engine.snapshot()) == state_to_bytes(
                engine.snapshot()
            )

    def test_serialized_process_mode_timed_kind(self):
        """Timed kinds route expiry through the workers: the plane
        compacts at the query's clock before collecting, exactly when a
        direct engine would compact inside ``sample``."""
        items = make_items(4_000)
        ts = uniform_arrivals(items.size, 100.0)
        engine = ShardedSamplerEngine(TW_CONFIG, shards=4, seed=7)
        with SamplerService(
            TW_CONFIG, shards=4, seed=7, serialized=True,
            workers_mode="process", ingest_workers=2, compact_interval=None,
        ) as svc:
            for lo in range(0, items.size, 1_000):
                svc.submit(items[lo:lo + 1_000], ts[lo:lo + 1_000])
                engine.ingest(items[lo:lo + 1_000],
                              timestamps=ts[lo:lo + 1_000])
                now = float(ts[min(lo + 1_000, items.size) - 1])
                assert svc.sample(now=now) == engine.sample(now=now)
            assert state_to_bytes(svc.engine.snapshot()) == state_to_bytes(
                engine.snapshot()
            )

    def test_worker_count_never_changes_final_state(self):
        items = make_items(6_000)
        reference = None
        for workers in (1, 2, 4):
            with SamplerService(
                G_CONFIG, shards=4, seed=11, workers_mode="process",
                ingest_workers=workers, compact_interval=None,
                refresh_interval=1e9,
            ) as svc:
                for lo in range(0, items.size, 750):
                    svc.submit(items[lo:lo + 750])
                svc.flush(timeout=30.0)
                svc.refresh()
                blob = state_to_bytes(svc.engine.snapshot())
            if reference is None:
                reference = blob
            assert blob == reference


# ---------------------------------------------------------------------------
# Crash handling
# ---------------------------------------------------------------------------
class TestWorkerCrash:
    def test_mid_batch_crash_latches_and_loses_nothing(self, monkeypatch):
        """A worker dying with frames in flight cannot restart (accepted
        items would vanish): the service latches closed, health goes
        not-ready, and the accounting reconciles every accepted item as
        applied or failed — none silently dropped."""
        monkeypatch.setenv("REPRO_SERVING_FAULT_ITEM", "999999")
        items = make_items(2_000)
        svc = SamplerService(
            G_CONFIG, shards=4, seed=0, workers_mode="process",
            ingest_workers=2, compact_interval=None,
        )
        try:
            svc.submit(items)
            poison = np.array([7, 999999, 11], dtype=np.int64)
            svc.submit(poison)
            assert _wait_until(
                lambda: svc.stats()["ingest"]["worker_errors"] > 0
            ), "worker crash never latched"
            with pytest.raises(ServiceClosed):
                svc.submit(np.arange(10))
                svc.flush(timeout=5.0)
            report = svc.health()
            assert not report.ready
            assert report.probe("worker_errors").status == "fail"
            stats = svc.stats()["ingest"]
            assert stats["pending_items"] == 0
            assert (
                stats["submitted_items"]
                == stats["applied_items"] + stats["failed_items"]
            )
            assert stats["failed_items"] > 0
            assert stats["worker_restarts"] == 0
        finally:
            svc.close(drain=False)

    def test_idle_crash_restarts_losslessly(self):
        """A worker dying with nothing in flight and the mirror caught
        up is respawned from the mirror's snapshots: zero failed items,
        restart counted, service healthy and serving again."""
        items = make_items(2_000)
        with SamplerService(
            G_CONFIG, shards=4, seed=0, workers_mode="process",
            ingest_workers=2, compact_interval=None, refresh_interval=1e9,
        ) as svc:
            svc.submit(items)
            svc.flush(timeout=30.0)
            svc.refresh()  # collect() — mirror catches up, acked == pulled
            link = svc._plane.links[0]
            link.proc.kill()
            assert _wait_until(lambda: link.restarts == 1), (
                "idle worker death did not restart"
            )
            svc.submit(items)
            svc.flush(timeout=30.0)
            svc.refresh()
            assert svc.sample().is_item
            stats = svc.stats()
            assert stats["ingest"]["failed_items"] == 0
            assert stats["ingest"]["worker_restarts"] == 1
            assert svc.metrics.get(
                "repro_serving_worker_restarts_total"
            ).total() == 1
            report = svc.health()
            assert report.ready
            assert report.probe("workers").status == "pass"
            assert "restart" in report.probe("workers").detail


# ---------------------------------------------------------------------------
# Service surface: probes, metrics, stats, validation
# ---------------------------------------------------------------------------
class TestProcessServiceSurface:
    def test_exposition_and_stats_carry_process_plane(self):
        items = make_items(3_000)
        with SamplerService(
            G_CONFIG, shards=4, seed=0, workers_mode="process",
            ingest_workers=2, compact_interval=None,
        ) as svc:
            svc.submit(items)
            svc.flush(timeout=30.0)
            svc.refresh()
            text = svc.metrics.render_prometheus()
            assert 'repro_serving_ipc_frames_total{direction="send"}' in text
            assert 'repro_serving_ipc_bytes_total{direction="recv"}' in text
            assert 'repro_serving_worker_queue_depth{worker="0"}' in text
            assert "# TYPE repro_serving_worker_restarts_total counter" in text
            frames = svc.metrics.get("repro_serving_ipc_frames_total")
            assert frames.labels(direction="send").value > 0
            assert frames.labels(direction="recv").value > 0
            stats = svc.stats()
            assert stats["workers_mode"] == "process"
            assert stats["workers"] == 2
            procs = stats["ingest"]["worker_processes"]
            assert len(procs) == 2
            assert all(st["alive"] for st in procs)
            assert sorted(s for st in procs for s in st["shards"]) == [
                0, 1, 2, 3,
            ]
            report = svc.health()
            assert report.ready
            assert "process" in report.probe("workers").detail

    def test_thread_mode_exposition_still_has_plane_families(self):
        with SamplerService(
            G_CONFIG, shards=2, seed=0, ingest_workers=1,
            compact_interval=None,
        ) as svc:
            text = svc.metrics.render_prometheus()
            for name in (
                "repro_serving_ipc_frames_total",
                "repro_serving_ipc_bytes_total",
                "repro_serving_worker_restarts_total",
                "repro_serving_worker_queue_depth",
            ):
                assert f"# HELP {name} " in text, name

    def test_workers_mode_validation(self):
        with pytest.raises(ValueError, match="workers_mode"):
            SamplerService(G_CONFIG, shards=2, workers_mode="fiber")

    def test_process_mode_rejects_prebuilt_engine(self):
        engine = ShardedSamplerEngine(G_CONFIG, shards=2, seed=0)
        with pytest.raises(ValueError, match="registry config"):
            SamplerService(engine, workers_mode="process")


# ---------------------------------------------------------------------------
# Reader-view pooling (query plane)
# ---------------------------------------------------------------------------
class TestViewPooling:
    def test_n_readers_one_generation_one_copy(self):
        """The pooling regression gate: N non-overlapping readers on a
        single published generation lease the same pooled view — one
        fold copy total, not one per reader."""
        items = make_items(3_000)
        with SamplerService(
            G_CONFIG, shards=4, seed=5, ingest_workers=2,
            refresh_interval=1e9, compact_interval=None,
        ) as svc:
            svc.submit(items)
            svc.flush(timeout=30.0)
            svc.refresh()
            results = []

            def reader():
                results.append(svc.sample())

            for __ in range(8):
                t = threading.Thread(target=reader)
                t.start()
                t.join()
            assert len(results) == 8
            info = svc._executor.view_info()
            assert info["views_copied"] == 1
            assert info["views_leased"] == 8
            assert info["pool_free"] == 1
            stats = svc.stats()["query"]
            assert stats["views_copied"] == 1
            assert stats["views_leased"] == 8

    def test_pool_reused_across_generations(self):
        """A new generation republishes the fold but the per-generation
        copy count stays one per publish, regardless of reader count."""
        items = make_items(2_000)
        with SamplerService(
            G_CONFIG, shards=2, seed=5, ingest_workers=1,
            refresh_interval=1e9, compact_interval=None,
        ) as svc:
            for round_no in range(3):
                svc.submit(items)
                svc.flush(timeout=30.0)
                svc.refresh()
                for __ in range(4):
                    t = threading.Thread(target=svc.sample)
                    t.start()
                    t.join()
            info = svc._executor.view_info()
            assert info["views_copied"] == 3  # one per generation
            assert info["views_leased"] == 12

    def test_concurrent_readers_each_get_a_view(self):
        """Overlapping readers force extra copies (exclusive leases) but
        never share a live view; copies stay bounded by concurrency."""
        items = make_items(3_000)
        with SamplerService(
            G_CONFIG, shards=4, seed=5, ingest_workers=2,
            refresh_interval=1e9, compact_interval=None,
        ) as svc:
            svc.submit(items)
            svc.flush(timeout=30.0)
            svc.refresh()
            barrier = threading.Barrier(4)
            errors = []

            def reader():
                try:
                    barrier.wait(timeout=10.0)
                    for __ in range(20):
                        out = svc.sample()
                        assert out is not None
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=reader) for __ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            info = svc._executor.view_info()
            assert 1 <= info["views_copied"] <= 4
            assert info["views_leased"] == 80
