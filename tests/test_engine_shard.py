"""Sharded engine: partition determinism, routed ingestion, and — the
point of it all — merged shard output matching the single-sampler target
distribution exactly."""

import numpy as np
import pytest

from helpers import assert_matches_distribution
from repro.engine import ShardedSamplerEngine, UniversePartitioner
from repro.engine.state import state_from_bytes, state_to_bytes
from repro.stats import f0_target, lp_target
from repro.streams import zipf_stream


class TestUniversePartitioner:
    def test_assignment_deterministic_and_total(self):
        part = UniversePartitioner(8, seed=3)
        items = np.arange(10_000)
        ids = part.assign(items)
        assert np.array_equal(ids, part.assign(items))
        assert ids.min() >= 0 and ids.max() < 8
        # hash strategy should spread a structured id space roughly evenly
        counts = np.bincount(ids, minlength=8)
        assert counts.min() > 10_000 / 8 / 2

    def test_split_preserves_order_and_mass(self):
        part = UniversePartitioner(4, seed=1)
        items = np.asarray(zipf_stream(100, 5000, alpha=1.2, seed=0).items)
        chunks = part.split(items)
        assert sum(c.size for c in chunks) == 5000
        ids = part.assign(items)
        for k, chunk in enumerate(chunks):
            assert np.array_equal(chunk, items[ids == k])

    def test_modulo_strategy(self):
        part = UniversePartitioner(4, strategy="modulo")
        assert np.array_equal(part.assign(np.arange(8)), np.arange(8) % 4)

    def test_equality_is_layout_equality(self):
        assert UniversePartitioner(4, seed=1) == UniversePartitioner(4, seed=1)
        assert UniversePartitioner(4, seed=1) != UniversePartitioner(4, seed=2)
        assert UniversePartitioner(4, seed=1) != UniversePartitioner(8, seed=1)

    def test_validates(self):
        with pytest.raises(ValueError):
            UniversePartitioner(0)
        with pytest.raises(ValueError):
            UniversePartitioner(4, strategy="round-robin")


class TestShardedEngineBasics:
    CONFIG = {"kind": "g", "measure": {"name": "lp", "p": 1.0}, "instances": 16}

    def test_ingest_routes_everything(self):
        engine = ShardedSamplerEngine(self.CONFIG, shards=4, seed=0)
        stream = zipf_stream(64, 3000, alpha=1.1, seed=1)
        assert engine.ingest(stream.items) == 3000
        assert engine.position == 3000
        assert all(s.position > 0 for s in engine.samplers)

    def test_scalar_update_routes_consistently(self):
        engine = ShardedSamplerEngine(self.CONFIG, shards=4, seed=0)
        for item in [3, 3, 3, 17]:
            engine.update(item)
        shard = engine.shard_of(3)
        assert engine.samplers[shard].position == 3

    def test_requires_mergeable_kind(self):
        with pytest.raises(ValueError):
            ShardedSamplerEngine({"kind": "sw-f0", "n": 64, "window": 10}, shards=2)

    def test_single_shard_degenerates_gracefully(self):
        engine = ShardedSamplerEngine(self.CONFIG, shards=1, seed=0)
        stream = zipf_stream(32, 1000, alpha=1.0, seed=2)
        engine.ingest(stream.items)
        assert engine.position == 1000
        assert engine.sample().outcome is not None

    def test_snapshot_restore_roundtrip(self):
        engine = ShardedSamplerEngine(self.CONFIG, shards=3, seed=4)
        stream = zipf_stream(48, 2000, alpha=1.2, seed=3)
        engine.ingest(stream.items[:1200])
        buf = state_to_bytes(engine.snapshot())
        twin = ShardedSamplerEngine(self.CONFIG, shards=3, seed=4)
        twin.restore(state_from_bytes(buf))
        engine.ingest(stream.items[1200:])
        twin.ingest(stream.items[1200:])
        assert twin.position == engine.position == 2000
        assert twin.sample().item == engine.sample().item

    def test_restore_rejects_layout_mismatch(self):
        engine = ShardedSamplerEngine(self.CONFIG, shards=3, seed=4)
        other = ShardedSamplerEngine(self.CONFIG, shards=3, seed=5)
        with pytest.raises(ValueError):
            other.restore(engine.snapshot())

    def test_cross_engine_merge(self):
        stream = zipf_stream(48, 2000, alpha=1.2, seed=6)
        site_a = ShardedSamplerEngine(self.CONFIG, shards=4, seed=7)
        site_b = ShardedSamplerEngine(
            self.CONFIG, shards=4, seed=8, partitioner=site_a.partitioner
        )
        site_a.ingest(stream.items[:1000])
        site_b.ingest(stream.items[1000:])
        site_a.merge(site_b)
        assert site_a.position == 2000

    def test_merge_rejects_different_layouts(self):
        a = ShardedSamplerEngine(self.CONFIG, shards=4, seed=1)
        b = ShardedSamplerEngine(self.CONFIG, shards=4, seed=2)
        with pytest.raises(ValueError):
            a.merge(b)


class TestShardedExactness:
    def test_sharded_g_sampler_matches_single_target(self):
        stream = zipf_stream(48, 2000, alpha=1.2, seed=10)
        target = lp_target(stream.frequencies(), 1.0)

        def run(seed):
            engine = ShardedSamplerEngine(
                {"kind": "g", "measure": {"name": "lp", "p": 1.0}, "instances": 24},
                shards=4,
                seed=seed,
            )
            engine.ingest(stream.items)
            return engine.sample()

        assert_matches_distribution(run, target, trials=350)

    def test_sharded_lp2_k8_matches_single_target(self):
        """The acceptance-criteria configuration: K = 8, p = 2."""
        stream = zipf_stream(32, 1600, alpha=1.2, seed=11)
        target = lp_target(stream.frequencies(), 2.0)

        def run(seed):
            engine = ShardedSamplerEngine(
                {"kind": "lp", "p": 2.0, "n": 32, "instances": 64},
                shards=8,
                seed=seed,
            )
            engine.ingest(stream.items)
            return engine.sample()

        assert_matches_distribution(run, target, trials=300)

    def test_f0_engine_position_counts_updates(self):
        stream = zipf_stream(80, 500, alpha=1.1, seed=14)
        for kind in ("f0", "oracle-f0", "algorithm5-f0"):
            engine = ShardedSamplerEngine({"kind": kind, "n": 80}, shards=4, seed=1)
            engine.ingest(stream.items)
            assert engine.position == 500, kind

    def test_sharded_f0_matches_single_target(self):
        stream = zipf_stream(80, 1500, alpha=1.1, seed=12)
        target = f0_target(stream.frequencies())

        def run(seed):
            engine = ShardedSamplerEngine({"kind": "f0", "n": 80}, shards=4, seed=seed)
            engine.ingest(stream.items)
            return engine.sample()

        assert_matches_distribution(run, target, trials=350)

    def test_sharded_oracle_f0_matches_single_target(self):
        stream = zipf_stream(80, 1500, alpha=1.1, seed=13)
        target = f0_target(stream.frequencies())

        def run(seed):
            engine = ShardedSamplerEngine(
                {"kind": "oracle-f0", "n": 80}, shards=3, seed=seed
            )
            engine.ingest(stream.items)
            return engine.sample()

        assert_matches_distribution(run, target, trials=350)
