"""Distributional exactness of the Framework 1.3 G-samplers (Theorem 3.1,
Corollary 3.6)."""

import math

import numpy as np
import pytest

from helpers import assert_matches_distribution
from repro.core import (
    ConcaveMeasure,
    FairMeasure,
    HuberMeasure,
    L1L2Measure,
    SingleGSampler,
    TrulyPerfectGSampler,
)
from repro.stats import g_target
from repro.streams import stream_from_frequencies, zipf_stream

FREQ = np.array([1, 2, 3, 5, 8, 13, 21])
STREAM = stream_from_frequencies(FREQ, order="random", seed=99)

M_ESTIMATORS = [L1L2Measure(), FairMeasure(1.0), HuberMeasure(1.0)]


class TestSingleGSampler:
    def test_exact_distribution_conditioned_on_accept(self):
        measure = L1L2Measure()
        target = g_target(FREQ, measure)

        def run(seed):
            s = SingleGSampler(measure, seed=seed)
            s.extend(STREAM)
            return s.sample()

        report = assert_matches_distribution(run, target, trials=6000)
        # A single instance accepts with probability F_G/(ζ m) < 1.
        assert 0 < report.fail_rate < 1

    def test_empty_stream_returns_bot(self):
        s = SingleGSampler(L1L2Measure(), seed=0)
        assert s.sample().is_empty

    def test_invalid_zeta_raises(self):
        s = SingleGSampler(L1L2Measure(), seed=0)
        s.extend([0] * 10)
        with pytest.raises(ValueError):
            s.sample(zeta=1e-6)


class TestTrulyPerfectGSampler:
    @pytest.mark.parametrize("measure", M_ESTIMATORS, ids=lambda m: m.name)
    def test_m_estimator_exactness(self, measure):
        target = g_target(FREQ, measure)

        def run(seed):
            return TrulyPerfectGSampler(
                measure, seed=seed, m_hint=len(STREAM)
            ).run(STREAM)

        assert_matches_distribution(run, target, trials=4000, max_fail_rate=0.05)

    def test_concave_measure_exactness(self):
        measure = ConcaveMeasure(lambda x: math.log2(1 + x), "log2(1+x)")
        target = g_target(FREQ, measure)

        def run(seed):
            return TrulyPerfectGSampler(
                measure, seed=seed, m_hint=len(STREAM)
            ).run(STREAM)

        assert_matches_distribution(run, target, trials=4000, max_fail_rate=0.05)

    def test_fail_rate_respects_delta(self):
        measure = HuberMeasure(1.0)
        fails = 0
        trials = 400
        for seed in range(trials):
            s = TrulyPerfectGSampler(measure, delta=0.05, seed=seed, m_hint=len(STREAM))
            if s.run(STREAM).is_fail:
                fails += 1
        assert fails / trials <= 0.05 + 0.03

    def test_empty_stream(self):
        s = TrulyPerfectGSampler(L1L2Measure(), seed=0, m_hint=10)
        assert s.sample().is_empty

    def test_default_instances_m_free_for_convex(self):
        """For convex measures the pool size is independent of m."""
        a = TrulyPerfectGSampler.default_instances(L1L2Measure(), 0.05, m_hint=100)
        b = TrulyPerfectGSampler.default_instances(L1L2Measure(), 0.05, m_hint=10**6)
        assert a == b

    def test_default_instances_grows_with_confidence(self):
        lo = TrulyPerfectGSampler.default_instances(HuberMeasure(1.0), 0.5)
        hi = TrulyPerfectGSampler.default_instances(HuberMeasure(1.0), 0.001)
        assert hi > lo

    def test_lp_above_one_rejected_without_normalizer(self):
        from repro.core import LpMeasure

        with pytest.raises(ValueError):
            TrulyPerfectGSampler(LpMeasure(2.0), seed=0)

    def test_explicit_instances_used(self):
        s = TrulyPerfectGSampler(L1L2Measure(), instances=7, seed=0)
        assert s.instances == 7

    def test_space_words_accounting(self):
        s = TrulyPerfectGSampler(L1L2Measure(), instances=5, seed=0)
        s.extend(zipf_stream(16, 100, seed=1))
        assert s.space_words >= 4 * 5
        assert s.space_words <= 4 * 5 + 2 * 5  # ≤ instances tracked items

    def test_metadata_contains_count_and_zeta(self):
        s = TrulyPerfectGSampler(L1L2Measure(), instances=64, seed=3)
        res = s.run(STREAM)
        assert res.is_item
        assert res.metadata["count"] >= 1
        assert res.metadata["zeta"] == pytest.approx(math.sqrt(2))

    def test_validates_delta(self):
        with pytest.raises(ValueError):
            TrulyPerfectGSampler(L1L2Measure(), delta=0.0)
