"""Shared test helpers.

Statistical assertions use *fixed seeds*, so every run is deterministic;
thresholds were chosen with comfortable margin over the values observed at
those seeds.  ``assert_matches_distribution`` is the workhorse: it demands
both a healthy χ² p-value and a TV distance within a small multiple of the
Monte-Carlo noise floor — the two signatures of a truly perfect sampler.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats import evaluate
from repro.stats.harness import EvaluationReport


def assert_matches_distribution(
    run,
    target: np.ndarray,
    trials: int,
    min_pvalue: float = 1e-3,
    tv_factor: float = 3.0,
    max_fail_rate: float | None = None,
    seed_offset: int = 0,
) -> EvaluationReport:
    """Assert the sampler's conditional output equals ``target``."""
    report = evaluate(run, target, trials=trials, seed_offset=seed_offset)
    assert report.successes > 0, "sampler never returned an item"
    assert report.chi2_pvalue >= min_pvalue, (
        f"chi-square rejects exactness: p={report.chi2_pvalue:.2e}, "
        f"TV={report.tv:.4f} (noise {report.tv_noise_floor:.4f})"
    )
    assert report.tv <= tv_factor * report.tv_noise_floor, (
        f"TV {report.tv:.4f} exceeds {tv_factor}x noise floor "
        f"{report.tv_noise_floor:.4f}"
    )
    if max_fail_rate is not None:
        assert report.fail_rate <= max_fail_rate, (
            f"fail rate {report.fail_rate:.3f} exceeds {max_fail_rate}"
        )
    return report


@pytest.fixture
def rng():
    return np.random.default_rng(0xC0FFEE)
