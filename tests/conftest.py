"""Shared pytest fixtures.

Helper *functions* live in :mod:`helpers` (``tests/helpers.py``) — keeping
conftest fixture-only avoids the classic pitfall where two top-level
``conftest.py`` modules (here: tests/ and benchmarks/) shadow each other
in ``sys.modules`` and break ``from conftest import ...``.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(0xC0FFEE)
