"""Tests for reservoir primitives (Algorithm 1 and skip-ahead jumps)."""

from collections import Counter

import numpy as np
import pytest
from scipy import stats as sps

from repro.core.reservoir import KReservoir, TimestampedReservoir, skip_next_replacement


class TestSkipNextReplacement:
    def test_first_position_always_sampled(self):
        rng = np.random.default_rng(0)
        assert skip_next_replacement(0, rng) == 1

    def test_always_future(self):
        rng = np.random.default_rng(1)
        for t in [1, 5, 100]:
            for __ in range(200):
                assert skip_next_replacement(t, rng) > t

    def test_distribution_matches_sequential(self):
        """P(T > u | at t) should be t/u — check via empirical CDF."""
        rng = np.random.default_rng(2)
        t = 10
        draws = np.array([skip_next_replacement(t, rng) for __ in range(20000)])
        for u in [11, 15, 20, 40, 100]:
            expected = t / u
            observed = float((draws > u).mean())
            assert observed == pytest.approx(expected, abs=0.02)


class TestTimestampedReservoir:
    def test_uniform_over_positions(self):
        """The held timestamp is uniform over [1, m]."""
        m = 20
        counts = Counter()
        for seed in range(8000):
            r = TimestampedReservoir(seed)
            r.extend(range(m))  # all-distinct stream: item == position-1
            counts[r.timestamp] += 1
        observed = np.array([counts[t] for t in range(1, m + 1)])
        __, pvalue = sps.chisquare(observed)
        assert pvalue > 1e-3

    def test_count_equals_forward_occurrences(self):
        """count = f_i − j + 1 for the sampled j-th occurrence."""
        stream = [3, 1, 3, 3, 2, 1, 3]
        for seed in range(300):
            r = TimestampedReservoir(seed)
            r.extend(stream)
            j_pos = r.timestamp - 1
            expected = sum(1 for x in stream[j_pos:] if x == r.item)
            assert r.count == expected
            assert stream[j_pos] == r.item
            assert r.count >= 1

    def test_empty_stream(self):
        r = TimestampedReservoir(0)
        assert r.item is None
        assert r.position == 0

    def test_single_item(self):
        r = TimestampedReservoir(0)
        r.update(7)
        assert r.item == 7
        assert r.count == 1
        assert r.timestamp == 1


class TestKReservoir:
    def test_holds_first_k(self):
        r = KReservoir(5, seed=0)
        r.extend([1, 2, 3])
        assert sorted(r.sample()) == [1, 2, 3]

    def test_sample_size_capped(self):
        r = KReservoir(4, seed=0)
        r.extend(range(100))
        assert len(r.sample()) == 4

    def test_uniformity(self):
        m, k = 12, 3
        counts = Counter()
        for seed in range(6000):
            r = KReservoir(k, seed=seed)
            r.extend(range(m))
            for item in r.sample():
                counts[item] += 1
        observed = np.array([counts[i] for i in range(m)])
        __, pvalue = sps.chisquare(observed)
        assert pvalue > 1e-3

    def test_validates_k(self):
        with pytest.raises(ValueError):
            KReservoir(0)
