"""TimestampedStream model + arrival-process generators."""

import numpy as np
import pytest

from repro.streams import (
    Stream,
    TimestampedStream,
    bursty_arrivals,
    poisson_arrivals,
    uniform_arrivals,
    with_arrivals,
    zipf_stream,
)


class TestTimestampedStream:
    def test_basic_properties(self):
        ts = TimestampedStream([3, 1, 4, 1], [0.5, 1.0, 1.0, 2.5], n=8)
        assert len(ts) == 4
        assert ts.n == 8
        assert ts.start_time == 0.5
        assert ts.end_time == 2.5
        assert ts.duration == 2.0
        assert list(ts) == [(3, 0.5), (1, 1.0), (4, 1.0), (1, 2.5)]
        assert "TimestampedStream" in repr(ts)

    def test_empty_stream(self):
        ts = TimestampedStream([], [], n=4)
        assert len(ts) == 0
        assert ts.start_time == 0.0 and ts.end_time == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="timestamps"):
            TimestampedStream([1, 2], [0.0], n=4)
        with pytest.raises(ValueError, match="non-decreasing"):
            TimestampedStream([1, 2], [1.0, 0.5], n=4)
        with pytest.raises(ValueError, match="non-negative"):
            TimestampedStream([1, 2], [-1.0, 0.5], n=4)
        with pytest.raises(ValueError, match="1-d"):
            TimestampedStream([1, 2], [[0.0], [1.0]], n=4)
        with pytest.raises(ValueError):  # item outside universe
            TimestampedStream([9], [0.0], n=4)

    def test_window_frequencies_exact(self):
        ts = TimestampedStream(
            [0, 1, 0, 2, 0], [1.0, 2.0, 3.0, 4.0, 5.0], n=4
        )
        # window (2, 5]: items at t=3,4,5 → {0:2, 2:1}
        assert ts.window_frequencies(3.0).tolist() == [2, 0, 1, 0]
        # explicit now: window (1, 4] → items at t=2,3,4
        assert ts.window_frequencies(3.0, now=4.0).tolist() == [1, 1, 1, 0]
        # horizon covering everything
        assert ts.window_frequencies(100.0).tolist() == [3, 1, 1, 0]
        with pytest.raises(ValueError):
            ts.window_frequencies(0.0)

    def test_window_boundary_is_half_open(self):
        ts = TimestampedStream([0, 1], [1.0, 2.0], n=2)
        # window (1.0, 2.0]: the update AT now−horizon is expired.
        assert ts.window_frequencies(1.0).tolist() == [0, 1]

    def test_prefix_and_prefix_until(self):
        ts = TimestampedStream([0, 1, 2], [1.0, 2.0, 3.0], n=4)
        assert ts.prefix(2).items.tolist() == [0, 1]
        assert ts.prefix_until(2.5).items.tolist() == [0, 1]
        assert ts.prefix_until(3.0).items.tolist() == [0, 1, 2]

    def test_underlying_stream(self):
        ts = TimestampedStream([0, 1], [1.0, 2.0], n=4)
        assert isinstance(ts.stream, Stream)
        assert ts.stream.frequencies().tolist() == [1, 1, 0, 0]


class TestArrivalProcesses:
    def test_uniform_rate(self):
        ts = uniform_arrivals(100, rate=10.0)
        assert ts.shape == (100,)
        gaps = np.diff(ts)
        assert np.allclose(gaps, 0.1)
        assert np.isclose(ts[0], 0.1)

    def test_poisson_is_seeded_and_monotone(self):
        a = poisson_arrivals(500, rate=100.0, seed=7)
        b = poisson_arrivals(500, rate=100.0, seed=7)
        assert np.array_equal(a, b)
        assert np.all(np.diff(a) >= 0)
        # mean gap ≈ 1/rate
        assert 0.5 / 100.0 < np.diff(a).mean() < 2.0 / 100.0

    def test_bursty_alternates_rates(self):
        ts = bursty_arrivals(
            4000, base_rate=10.0, burst_rate=1000.0, mean_run=500, seed=3
        )
        assert np.all(np.diff(ts) >= 0)
        gaps = np.diff(ts)
        # Both regimes show up: some gaps near 1/10, some near 1/1000.
        assert gaps.max() > 10 * gaps.min()

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_arrivals(10, rate=0.0)
        with pytest.raises(ValueError):
            poisson_arrivals(10, rate=-1.0)
        with pytest.raises(ValueError):
            bursty_arrivals(10, base_rate=0.0, burst_rate=1.0)
        with pytest.raises(ValueError):
            bursty_arrivals(10, base_rate=1.0, burst_rate=1.0, mean_run=0)
        with pytest.raises(ValueError):
            uniform_arrivals(10, rate=1.0, start=-5.0)


class TestWithArrivals:
    def test_glues_clock_to_stream(self):
        stream = zipf_stream(32, 1000, alpha=1.1, seed=0)
        ts = with_arrivals(stream, process="poisson", rate=50.0, seed=1)
        assert np.array_equal(ts.items, stream.items)
        assert len(ts) == 1000
        a = with_arrivals(stream, process="poisson", rate=50.0, seed=1)
        assert np.array_equal(ts.timestamps, a.timestamps)

    def test_all_processes(self):
        stream = zipf_stream(16, 200, alpha=1.0, seed=0)
        for process in ("uniform", "poisson", "bursty"):
            ts = with_arrivals(stream, process=process, rate=10.0, seed=2)
            assert len(ts) == 200
            assert np.all(np.diff(ts.timestamps) >= 0)

    def test_unknown_process(self):
        stream = zipf_stream(16, 10, alpha=1.0, seed=0)
        with pytest.raises(ValueError, match="poisson"):
            with_arrivals(stream, process="fractal")
