"""Config-driven construction: every kind builds, every typo fails loudly."""

import pytest

from repro.core.f0_sampler import (
    Algorithm5F0Sampler,
    BoundedMeasureSampler,
    RandomOracleF0Sampler,
    TrulyPerfectF0Sampler,
)
from repro.core.g_sampler import SamplerPool, TrulyPerfectGSampler
from repro.core.lp_sampler import TrulyPerfectLpSampler
from repro.core.measures import HuberMeasure, LpMeasure, TukeyMeasure
from repro.engine.registry import (
    build_measure,
    build_sampler,
    measure_names,
    register_measure,
    register_sampler,
    sampler_kinds,
)
from repro.sliding_window import (
    SlidingWindowF0Sampler,
    SlidingWindowGSampler,
    SlidingWindowLpSampler,
)
from repro.windows import (
    TimeWindowF0Sampler,
    TimeWindowGSampler,
    TimeWindowLpSampler,
    WindowBank,
)


class TestBuildMeasure:
    def test_builds_stock_measures(self):
        assert isinstance(build_measure({"name": "lp", "p": 1.5}), LpMeasure)
        assert isinstance(build_measure({"name": "huber", "tau": 2.0}), HuberMeasure)
        assert isinstance(build_measure({"name": "tukey"}), TukeyMeasure)

    def test_measure_instance_passthrough(self):
        measure = LpMeasure(2.0)
        assert build_measure(measure) is measure

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(ValueError, match="huber"):
            build_measure({"name": "hubert"})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="sigma"):
            build_measure({"name": "huber", "sigma": 1.0})

    def test_registry_is_extensible(self):
        register_measure("always-l1", lambda cfg: LpMeasure(1.0))
        try:
            assert isinstance(build_measure({"name": "always-l1"}), LpMeasure)
            assert "always-l1" in measure_names()
        finally:
            from repro.engine import registry

            registry._MEASURES.pop("always-l1")


class TestBuildSampler:
    @pytest.mark.parametrize(
        "config,cls",
        [
            ({"kind": "lp", "p": 2.0, "n": 64}, TrulyPerfectLpSampler),
            (
                {"kind": "g", "measure": {"name": "l1l2"}, "m_hint": 1000},
                TrulyPerfectGSampler,
            ),
            ({"kind": "f0", "n": 128}, TrulyPerfectF0Sampler),
            ({"kind": "oracle-f0", "n": 128}, RandomOracleF0Sampler),
            ({"kind": "algorithm5-f0", "n": 128}, Algorithm5F0Sampler),
            ({"kind": "pool", "instances": 8}, SamplerPool),
            (
                {"kind": "bounded", "measure": {"name": "tukey", "tau": 3.0}, "n": 64},
                BoundedMeasureSampler,
            ),
            (
                {"kind": "sw-g", "measure": {"name": "lp", "p": 1.0}, "window": 50},
                SlidingWindowGSampler,
            ),
            ({"kind": "sw-lp", "p": 2.0, "window": 50}, SlidingWindowLpSampler),
            ({"kind": "sw-f0", "n": 128, "window": 50}, SlidingWindowF0Sampler),
            (
                {
                    "kind": "tw_g",
                    "measure": {"name": "l1l2"},
                    "horizon": 60.0,
                    "expected_window_count": 500,
                },
                TimeWindowGSampler,
            ),
            (
                {"kind": "tw_lp", "p": 2.0, "horizon": 60.0, "instances": 16},
                TimeWindowLpSampler,
            ),
            ({"kind": "tw_f0", "n": 128, "horizon": 60.0}, TimeWindowF0Sampler),
            (
                {"kind": "window_bank", "resolutions": [60, 300], "p": 2.0,
                 "n": 128, "instances": 16},
                WindowBank,
            ),
        ],
    )
    def test_builds_every_kind(self, config, cls):
        sampler = build_sampler({**config, "seed": 0})
        assert isinstance(sampler, cls)

    def test_config_not_mutated(self):
        config = {"kind": "lp", "p": 2.0, "n": 64, "seed": 1}
        build_sampler(config)
        assert config == {"kind": "lp", "p": 2.0, "n": 64, "seed": 1}

    def test_unknown_kind_lists_alternatives(self):
        with pytest.raises(ValueError, match="oracle-f0"):
            build_sampler({"kind": "nope"})
        # The listing includes the windowed kinds and never a bare
        # KeyError escapes.
        with pytest.raises(ValueError, match="window_bank"):
            build_sampler({"kind": "nope"})
        with pytest.raises(ValueError, match="known:"):
            build_sampler({})  # kind missing entirely

    def test_unknown_kind_suggests_close_match(self):
        with pytest.raises(ValueError, match="did you mean 'tw_g'"):
            build_sampler({"kind": "tw-g"})
        with pytest.raises(ValueError, match="did you mean 'window_bank'"):
            build_sampler({"kind": "windowbank"})
        with pytest.raises(ValueError, match="did you mean 'huber'"):
            build_measure({"name": "huberr"})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="pee"):
            build_sampler({"kind": "lp", "p": 2.0, "n": 64, "pee": 3.0})

    def test_missing_required_key_is_config_error(self):
        with pytest.raises(ValueError, match="requires key 'p'"):
            build_sampler({"kind": "lp", "n": 64})
        with pytest.raises(ValueError, match="requires key 'measure'"):
            build_sampler({"kind": "g"})
        with pytest.raises(ValueError, match="requires key 'p'"):
            build_measure({"name": "lp"})

    def test_bounded_requires_bounded_measure(self):
        with pytest.raises(ValueError, match="bounded"):
            build_sampler(
                {"kind": "bounded", "measure": {"name": "lp", "p": 1.0}, "n": 64}
            )

    def test_registry_is_extensible(self):
        register_sampler("test-pool", lambda cfg: SamplerPool(int(cfg.pop("r"))))
        try:
            sampler = build_sampler({"kind": "test-pool", "r": 4})
            assert isinstance(sampler, SamplerPool)
            assert "test-pool" in sampler_kinds()
        finally:
            from repro.engine import registry

            registry._SAMPLERS.pop("test-pool")

    def test_seeded_builds_are_deterministic(self):
        stream = list(range(50)) * 4
        a = build_sampler({"kind": "lp", "p": 2.0, "n": 64, "seed": 9})
        b = build_sampler({"kind": "lp", "p": 2.0, "n": 64, "seed": 9})
        a.extend(stream)
        b.extend(stream)
        assert a.sample().item == b.sample().item
