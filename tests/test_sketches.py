"""Tests for CountMin, CountSketch, AMS F2, and Fp estimation."""

import numpy as np
import pytest

from repro.sketches import AmsF2, CountMin, CountSketch, FpEstimator, exact_fp
from repro.sketches.lp_norm import theoretical_units_for_error
from repro.streams import stream_from_frequencies, zipf_stream


class TestCountMin:
    def test_overestimates_never_under(self):
        stream = zipf_stream(200, 3000, alpha=1.3, seed=0)
        cm = CountMin(width=100, depth=4, seed=1)
        cm.extend(stream)
        freq = stream.frequencies()
        for i in range(200):
            assert cm.estimate(i) >= freq[i]

    def test_error_within_epsilon_m(self):
        stream = zipf_stream(200, 3000, alpha=1.3, seed=0)
        cm = CountMin.from_error(epsilon=0.02, delta=0.01, seed=1)
        cm.extend(stream)
        freq = stream.frequencies()
        violations = sum(
            cm.estimate(i) > freq[i] + 0.02 * len(stream) for i in range(200)
        )
        assert violations <= 4  # a handful of tail failures allowed

    def test_heavy_hitters(self):
        stream = zipf_stream(100, 2000, alpha=2.0, seed=2)
        cm = CountMin(200, 4, seed=3)
        cm.extend(stream)
        hh = cm.heavy_hitters(range(100), threshold=200)
        assert 0 in hh  # rank-1 zipf item dominates

    def test_total(self):
        cm = CountMin(8, 2, seed=0)
        cm.extend([1, 2, 3])
        assert cm.total == 3

    def test_validates_params(self):
        with pytest.raises(ValueError):
            CountMin(0, 1)
        with pytest.raises(ValueError):
            CountMin.from_error(0, 0.5)


class TestCountSketch:
    def test_planted_heavy_item_recovered(self):
        cs = CountSketch(width=256, depth=5, seed=0)
        freq = np.ones(100)
        freq[7] = 200
        for i, f in enumerate(freq):
            cs.update(i, float(f))
        est = np.array([cs.estimate(i) for i in range(100)])
        assert abs(est[7] - 200) < 30
        assert int(np.argmax(np.abs(est))) == 7

    def test_signed_updates_cancel(self):
        cs = CountSketch(64, 5, seed=1)
        cs.update(3, 10.0)
        cs.update(3, -10.0)
        assert abs(cs.estimate(3)) < 1e-9

    def test_l2_estimate(self):
        cs = CountSketch(512, 7, seed=2)
        freq = np.zeros(50)
        freq[:5] = 40.0
        for i, f in enumerate(freq):
            if f:
                cs.update(i, float(f))
        true_l2 = float(np.linalg.norm(freq))
        assert cs.l2_estimate() == pytest.approx(true_l2, rel=0.35)

    def test_from_error_sizes(self):
        cs = CountSketch.from_error(0.1, 0.05, seed=0)
        assert cs.width >= 1 / 0.1**2
        assert cs.depth >= 1

    def test_validates_params(self):
        with pytest.raises(ValueError):
            CountSketch(0, 1)


class TestAmsF2:
    def test_estimates_f2(self):
        stream = zipf_stream(100, 4000, alpha=1.2, seed=4)
        ams = AmsF2(per_group=128, groups=7, seed=5)
        ams.extend(stream)
        true_f2 = exact_fp(stream.frequencies(), 2.0)
        assert ams.estimate() == pytest.approx(true_f2, rel=0.3)

    def test_l2_estimate_is_sqrt(self):
        ams = AmsF2(per_group=64, groups=5, seed=6)
        ams.extend([0] * 100)
        assert ams.l2_estimate() == pytest.approx(100.0, rel=0.01)

    def test_from_error_sizes(self):
        ams = AmsF2.from_error(0.5, 0.1, seed=0)
        assert ams.estimate() == 0.0

    def test_validates_params(self):
        with pytest.raises(ValueError):
            AmsF2(0, 1)


class TestExactFp:
    def test_values(self):
        assert exact_fp(np.array([1, 2, 3]), 2.0) == pytest.approx(14.0)
        assert exact_fp(np.array([0, 0]), 1.5) == 0.0
        assert exact_fp(np.array([-2, 2]), 2.0) == pytest.approx(8.0)

    def test_fractional_p_ignores_zeros(self):
        assert exact_fp(np.array([0, 4]), 0.5) == pytest.approx(2.0)


class TestFpEstimator:
    def test_estimates_f2_within_tolerance(self):
        freq = np.full(50, 20)
        stream = stream_from_frequencies(freq, order="random", seed=0)
        est = FpEstimator(2.0, per_group=256, groups=5, seed=1)
        est.extend(stream)
        truth = exact_fp(freq, 2.0)
        assert est.estimate() == pytest.approx(truth, rel=0.35)

    def test_estimates_f_half(self):
        freq = np.full(20, 50)
        stream = stream_from_frequencies(freq, order="random", seed=2)
        est = FpEstimator(0.5, per_group=256, groups=5, seed=3)
        est.extend(stream)
        truth = exact_fp(freq, 0.5)
        assert est.estimate() == pytest.approx(truth, rel=0.35)

    def test_empty_stream(self):
        est = FpEstimator(2.0, per_group=4, groups=3, seed=0)
        assert est.estimate() == 0.0

    def test_lp_estimate(self):
        est = FpEstimator(2.0, per_group=64, groups=5, seed=4)
        est.extend([0] * 64)
        assert est.lp_estimate() == pytest.approx(64.0, rel=0.01)

    def test_validates_params(self):
        with pytest.raises(ValueError):
            FpEstimator(0.0)
        with pytest.raises(ValueError):
            FpEstimator(1.0, per_group=0)

    def test_theoretical_units(self):
        assert theoretical_units_for_error(2.0, 10_000, 0.5) >= 100
        assert theoretical_units_for_error(0.5, 10_000, 0.5) == 4
