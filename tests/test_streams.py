"""Tests for the stream model (repro.streams.stream)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams import Stream, StreamKind, TurnstileStream, Update


class TestUpdate:
    def test_defaults_to_unit_insertion(self):
        u = Update(3)
        assert u.item == 3
        assert u.delta == 1

    def test_rejects_negative_item(self):
        with pytest.raises(ValueError):
            Update(-1)

    def test_rejects_zero_delta(self):
        with pytest.raises(ValueError):
            Update(0, 0)

    def test_is_hashable_and_frozen(self):
        u = Update(1, 2)
        assert hash(u) == hash(Update(1, 2))
        with pytest.raises(AttributeError):
            u.item = 5


class TestStream:
    def test_basic_properties(self):
        s = Stream([0, 1, 1, 2], n=4)
        assert len(s) == 4
        assert s.n == 4
        assert s.kind is StreamKind.INSERTION_ONLY
        assert list(s) == [0, 1, 1, 2]
        assert s[2] == 1

    def test_frequencies(self):
        s = Stream([0, 1, 1, 3, 3, 3], n=4)
        assert s.frequencies().tolist() == [1, 2, 0, 3]

    def test_window_frequencies(self):
        s = Stream([0, 1, 1, 3, 3, 3], n=4)
        assert s.window_frequencies(2).tolist() == [0, 0, 0, 2]
        assert s.window_frequencies(100).tolist() == [1, 2, 0, 3]

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            Stream([0], n=1).window_frequencies(0)

    def test_rejects_out_of_range_items(self):
        with pytest.raises(ValueError):
            Stream([0, 5], n=3)
        with pytest.raises(ValueError):
            Stream([-1], n=3)

    def test_rejects_bad_universe(self):
        with pytest.raises(ValueError):
            Stream([], n=0)

    def test_items_are_read_only(self):
        s = Stream([0, 1], n=2)
        with pytest.raises(ValueError):
            s.items[0] = 1

    def test_prefix(self):
        s = Stream([0, 1, 2, 3], n=4)
        assert list(s.prefix(2)) == [0, 1]

    def test_concat(self):
        a = Stream([0, 1], n=3)
        b = Stream([2], n=3)
        assert list(a.concat(b)) == [0, 1, 2]

    def test_concat_universe_mismatch(self):
        with pytest.raises(ValueError):
            Stream([0], n=2).concat(Stream([0], n=3))

    def test_shuffled_preserves_multiset(self):
        s = Stream([0, 0, 1, 2, 2, 2], n=3)
        sh = s.shuffled(np.random.default_rng(0))
        assert sh.frequencies().tolist() == s.frequencies().tolist()

    @given(st.lists(st.integers(0, 9), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_frequencies_match_bincount(self, items):
        s = Stream(items, n=10)
        assert s.frequencies().tolist() == np.bincount(items, minlength=10).tolist()


class TestTurnstileStream:
    def test_strict_accepts_valid(self):
        ts = TurnstileStream([(0, 2), (0, -1), (1, 3)], n=2)
        assert ts.kind is StreamKind.STRICT_TURNSTILE
        assert ts.frequencies().tolist() == [1, 3]

    def test_strict_rejects_negativity(self):
        with pytest.raises(ValueError, match="strict"):
            TurnstileStream([(0, 1), (0, -2)], n=2)

    def test_general_allows_negativity(self):
        ts = TurnstileStream([(0, 1), (0, -2)], n=2, strict=False)
        assert ts.kind is StreamKind.GENERAL_TURNSTILE
        assert ts.frequencies().tolist() == [-1, 0]

    def test_rejects_item_outside_universe(self):
        with pytest.raises(ValueError):
            TurnstileStream([(5, 1)], n=3)

    def test_from_difference_zero(self):
        x = [1, 0, 1]
        ts = TurnstileStream.from_difference(x, x)
        assert ts.frequencies().tolist() == [0, 0, 0]

    def test_from_difference_nonzero(self):
        ts = TurnstileStream.from_difference([1, 1, 0], [1, 0, 1])
        assert ts.frequencies().tolist() == [0, 1, -1]

    def test_from_difference_shape_mismatch(self):
        with pytest.raises(ValueError):
            TurnstileStream.from_difference([1], [1, 0])

    def test_iteration_yields_updates(self):
        ts = TurnstileStream([(0, 2)], n=1)
        (u,) = list(ts)
        assert isinstance(u, Update)
        assert (u.item, u.delta) == (0, 2)
