"""Order invariance: the framework samplers' output distribution depends
only on the frequency vector, not on arrival order.

The reservoir's uniform-position sampling plus the telescoping correction
is oblivious to ordering — a distributional property worth testing
because many *other* streaming summaries (e.g. heavy-hitter sketches on
sorted vs interleaved input) are not order-oblivious, and Appendix B's
discussion of boundary bias shows how easily order sensitivity breaks
perfection.
"""

import numpy as np
import pytest

from repro.core import HuberMeasure, TrulyPerfectGSampler, TrulyPerfectLpSampler
from repro.stats import g_target, lp_target, total_variation
from repro.stats.harness import collect_outcomes, empirical_distribution
from repro.streams import stream_from_frequencies

FREQ = np.array([1, 3, 9, 27])
ORDERS = ["sorted", "interleaved", "random"]


def _empirical(run, trials=2500):
    counts, fails, __ = collect_outcomes(run, trials=trials)
    return empirical_distribution(counts, len(FREQ)), fails / trials


class TestOrderInvariance:
    @pytest.mark.parametrize("order", ORDERS)
    def test_lp_sampler_matches_target_in_every_order(self, order):
        stream = stream_from_frequencies(FREQ, order=order, seed=1)
        target = lp_target(FREQ, 2.0)

        def run(seed):
            return TrulyPerfectLpSampler(p=2.0, n=len(FREQ), seed=seed).run(stream)

        emp, fail_rate = _empirical(run)
        assert total_variation(emp, target) < 0.04
        assert fail_rate < 0.06

    @pytest.mark.parametrize("order", ORDERS)
    def test_g_sampler_matches_target_in_every_order(self, order):
        stream = stream_from_frequencies(FREQ, order=order, seed=2)
        measure = HuberMeasure(1.0)
        target = g_target(FREQ, measure)

        def run(seed):
            return TrulyPerfectGSampler(
                measure, seed=seed, m_hint=int(FREQ.sum())
            ).run(stream)

        emp, fail_rate = _empirical(run)
        assert total_variation(emp, target) < 0.04
        assert fail_rate < 0.06

    def test_pairwise_order_distributions_agree(self):
        """Direct cross-order comparison (not just each-vs-target)."""
        target = lp_target(FREQ, 2.0)
        empiricals = {}
        for order in ORDERS:
            stream = stream_from_frequencies(FREQ, order=order, seed=3)

            def run(seed, _s=stream):
                return TrulyPerfectLpSampler(
                    p=2.0, n=len(FREQ), seed=seed
                ).run(_s)

            empiricals[order], __ = _empirical(run, trials=2000)
        for a in ORDERS:
            for b in ORDERS:
                assert total_variation(empiricals[a], empiricals[b]) < 0.06
