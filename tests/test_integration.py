"""Cross-module integration tests."""

import numpy as np
import pytest

from helpers import assert_matches_distribution
from repro.core import (
    HuberMeasure,
    TrulyPerfectF0Sampler,
    TrulyPerfectGSampler,
    TrulyPerfectLpSampler,
)
from repro.sliding_window import SlidingWindowGSampler
from repro.stats import f0_target, g_target, lp_target
from repro.streams import (
    WindowedFrequency,
    planted_heavy_hitter_stream,
    zipf_stream,
)


class TestEndToEnd:
    def test_lp_samples_find_planted_heavy_hitter(self):
        """The intro's use case: repeated L2 samples expose heavy items."""
        stream = planted_heavy_hitter_stream(
            200, 4000, heavy_fraction=0.4, heavy_item=17, seed=0
        )
        hits = 0
        trials = 60
        for seed in range(trials):
            s = TrulyPerfectLpSampler(p=2.0, n=200, seed=seed)
            res = s.run(stream)
            if res.is_item and res.item == 17:
                hits += 1
        # Item 17 carries ≥ 97% of F2 mass on this stream.
        assert hits / trials > 0.7

    def test_f0_and_lp_agree_on_support(self):
        stream = zipf_stream(64, 1500, alpha=1.5, seed=1)
        support = set(np.flatnonzero(stream.frequencies()).tolist())
        for seed in range(40):
            f0_res = TrulyPerfectF0Sampler(64, seed=seed).run(stream)
            lp_res = TrulyPerfectLpSampler(p=2.0, n=64, seed=seed).run(stream)
            if f0_res.is_item:
                assert f0_res.item in support
            if lp_res.is_item:
                assert lp_res.item in support

    def test_window_sampler_agrees_with_windowed_oracle(self):
        """SlidingWindowGSampler vs WindowedFrequency oracle targets."""
        n, window = 10, 150
        stream = zipf_stream(n, 600, alpha=0.9, seed=2)
        oracle = WindowedFrequency(n, window)
        oracle.extend(stream)
        target = g_target(oracle.vector(), HuberMeasure())

        def run(seed):
            return SlidingWindowGSampler(
                HuberMeasure(), window=window, seed=seed
            ).run(stream)

        assert_matches_distribution(run, target, trials=2000, max_fail_rate=0.05)

    def test_reproducibility_same_seed(self):
        stream = zipf_stream(32, 500, seed=3)
        a = TrulyPerfectGSampler(HuberMeasure(), seed=7, m_hint=500).run(stream)
        b = TrulyPerfectGSampler(HuberMeasure(), seed=7, m_hint=500).run(stream)
        assert a.outcome == b.outcome
        assert a.item == b.item

    def test_different_seeds_vary(self):
        stream = zipf_stream(32, 500, alpha=0.5, seed=4)
        items = {
            TrulyPerfectGSampler(HuberMeasure(), seed=s, m_hint=500).run(stream).item
            for s in range(25)
        }
        assert len(items) > 3

    def test_sampling_with_metadata_retrieval(self):
        """The paper's metadata point: samples carry their own evidence
        (count, timestamp) that downstream code can consume."""
        stream = zipf_stream(16, 800, alpha=1.2, seed=5)
        s = TrulyPerfectLpSampler(p=2.0, n=16, seed=6)
        res = s.run(stream)
        assert res.is_item
        ts = res.metadata["timestamp"]
        assert stream[ts - 1] == res.item  # timestamp points at the item

    def test_multiple_measures_one_stream(self):
        """Run several G-samplers side by side on one pass (distributed
        summaries scenario)."""
        from repro.core import FairMeasure, L1L2Measure

        stream = zipf_stream(16, 700, alpha=1.1, seed=7)
        measures = [HuberMeasure(), FairMeasure(1.0), L1L2Measure()]
        samplers = [
            TrulyPerfectGSampler(m, seed=i, m_hint=700)
            for i, m in enumerate(measures)
        ]
        for item in stream:
            for s in samplers:
                s.update(item)
        freq = stream.frequencies()
        for m, s in zip(measures, samplers):
            res = s.sample()
            if res.is_item:
                assert freq[res.item] > 0
