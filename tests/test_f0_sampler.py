"""Tests for truly perfect F0 sampling (Section 5) and the Tukey sampler."""

import numpy as np
import pytest

from helpers import assert_matches_distribution
from repro.core import (
    Algorithm5F0Sampler,
    RandomOracleF0Sampler,
    TrulyPerfectF0Sampler,
    TukeyMeasure,
    TukeySampler,
)
from repro.stats import f0_target, g_target
from repro.streams import sparse_support_stream, stream_from_frequencies, zipf_stream

FREQ = np.array([4, 0, 1, 7, 0, 2, 0, 9, 3, 1])
STREAM = stream_from_frequencies(FREQ, order="random", seed=3)
TARGET = f0_target(FREQ)


class TestAlgorithm5:
    def test_sparse_regime_never_fails(self):
        """F0 < √n: everything is in T, sampling is exact."""
        stream = sparse_support_stream(400, support=5, m=300, seed=0)
        target = f0_target(stream.frequencies())

        def run(seed):
            s = Algorithm5F0Sampler(400, seed=seed)
            s.extend(stream)
            return s.sample()

        report = assert_matches_distribution(run, target, trials=2500)
        assert report.fail_rate == 0.0

    def test_dense_regime_uniform_with_bounded_failure(self):
        def run(seed):
            s = Algorithm5F0Sampler(len(FREQ), seed=seed)
            s.extend(STREAM)
            return s.sample()

        report = assert_matches_distribution(run, TARGET, trials=3000)
        # One copy fails w.p. ≤ e^{-2} ≈ 0.135 in the dense regime.
        assert report.fail_rate <= 0.25

    def test_reports_exact_frequency(self):
        for seed in range(50):
            s = Algorithm5F0Sampler(len(FREQ), seed=seed)
            s.extend(STREAM)
            res = s.sample()
            if res.is_item:
                assert res.metadata["frequency"] == FREQ[res.item]

    def test_empty_stream(self):
        s = Algorithm5F0Sampler(16, seed=0)
        assert s.sample().is_empty

    def test_validates_universe(self):
        with pytest.raises(ValueError):
            Algorithm5F0Sampler(0)
        s = Algorithm5F0Sampler(4, seed=0)
        with pytest.raises(ValueError):
            s.update(4)


class TestTrulyPerfectF0:
    def test_amplification_reduces_failure(self):
        fails = 0
        trials = 400
        for seed in range(trials):
            s = TrulyPerfectF0Sampler(len(FREQ), delta=0.01, seed=seed)
            if s.run(STREAM).is_fail:
                fails += 1
        assert fails / trials <= 0.02

    def test_distribution_uniform_over_support(self):
        def run(seed):
            return TrulyPerfectF0Sampler(len(FREQ), delta=0.05, seed=seed).run(STREAM)

        assert_matches_distribution(run, TARGET, trials=3000, max_fail_rate=0.05)

    def test_copies_scale_with_delta(self):
        few = TrulyPerfectF0Sampler(16, delta=0.3, seed=0).copies
        many = TrulyPerfectF0Sampler(16, delta=0.001, seed=0).copies
        assert many > few

    def test_validates_delta(self):
        with pytest.raises(ValueError):
            TrulyPerfectF0Sampler(4, delta=1.5)


class TestRandomOracleF0:
    def test_uniform_over_support(self):
        def run(seed):
            return RandomOracleF0Sampler(len(FREQ), seed=seed).run(STREAM)

        report = assert_matches_distribution(run, TARGET, trials=3000)
        assert report.fail_rate == 0.0  # the oracle sampler never fails

    def test_reports_exact_frequency(self):
        for seed in range(50):
            res = RandomOracleF0Sampler(len(FREQ), seed=seed).run(STREAM)
            assert res.is_item
            assert res.metadata["frequency"] == FREQ[res.item]

    def test_empty(self):
        assert RandomOracleF0Sampler(8, seed=0).sample().is_empty

    def test_deterministic_given_seed(self):
        a = RandomOracleF0Sampler(len(FREQ), seed=5).run(STREAM)
        b = RandomOracleF0Sampler(len(FREQ), seed=5).run(STREAM)
        assert a.item == b.item


class TestTukeySampler:
    def test_distribution_matches_tukey_target(self):
        tau = 5.0
        target = g_target(FREQ, TukeyMeasure(tau))

        def run(seed):
            return TukeySampler(len(FREQ), tau=tau, seed=seed).run(STREAM)

        assert_matches_distribution(run, target, trials=3000, max_fail_rate=0.05)

    def test_sqrt_n_variant(self):
        tau = 4.0
        target = g_target(FREQ, TukeyMeasure(tau))

        def run(seed):
            return TukeySampler(len(FREQ), tau=tau, oracle=False, seed=seed).run(STREAM)

        assert_matches_distribution(run, target, trials=2500, max_fail_rate=0.2)

    def test_repetitions_grow_with_tau(self):
        small = TukeySampler(16, tau=2.0, seed=0).repetitions
        large = TukeySampler(16, tau=10.0, seed=0).repetitions
        assert large > small

    def test_empty_stream(self):
        s = TukeySampler(8, tau=3.0, seed=0)
        assert s.sample().is_empty
