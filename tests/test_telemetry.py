"""Cross-process telemetry plane — shipping, merging, tracing tests.

The contracts the telemetry plane must keep:

* **wire exactness** — a registry snapshot tree round-trips through the
  frame codec bitwise, and ``apply_delta(base, snapshot_delta(base,
  latest))`` reproduces ``latest`` exactly;
* **restart monotonicity** — per-worker-generation base accounting
  means an idle-kill respawn never steps an exposed counter backwards
  and never double-counts (re-shipping a snapshot is idempotent);
* **unified exposition** — process-mode serving exposes the
  worker-side ingest-kernel counters and apply-latency histograms under
  ``worker`` labels, one header per family, promcheck-clean;
* **merged tracing** — the parent+worker Chrome trace carries distinct
  real pids with per-track monotone timestamps and clock-aligned spans.
"""

import io
import json
import math
import time

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.promcheck import check_text
from repro.obs.telemetry import (
    SNAPSHOT_VERSION,
    WorkerTelemetry,
    apply_delta,
    render_snapshot_prometheus,
    snapshot_delta,
    snapshot_registry,
)
from repro.obs.trace import TraceRecorder
from repro.serving import SamplerService
from repro.serving.transport import decode_frame, encode_frame
from repro.streams.generators import zipf_stream

G_CONFIG = {"kind": "g", "measure": {"name": "huber"}, "instances": 16}


def make_items(m: int, seed: int = 3, n: int = 1 << 10) -> np.ndarray:
    return np.asarray(zipf_stream(n, m, alpha=1.2, seed=seed).items)


def _wait_until(pred, timeout: float = 10.0, interval: float = 0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if pred():
            return True
        time.sleep(interval)
    return pred()


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    c = reg.counter("demo_events_total", "events", labels=("kind",))
    c.labels(kind="a").add(5)
    c.labels(kind="b").add(2)
    g = reg.gauge("demo_depth", "depth")
    g.set(3.5)
    h = reg.histogram("demo_seconds", "latency", labels=("op",))
    for v in (0.001, 0.004, 0.2):
        h.labels(op="x").observe(v)
    return reg


def _counter_samples(text: str, name: str) -> dict[str, float]:
    out = {}
    for line in text.splitlines():
        if line.startswith(name + "{") or line.startswith(name + " "):
            key, value = line.rsplit(" ", 1)
            out[key] = float(value)
    return out


# ---------------------------------------------------------------------------
# Snapshot trees and the frame codec
# ---------------------------------------------------------------------------
class TestSnapshotTree:
    def test_snapshot_round_trips_frame_codec_bitwise(self):
        tree = snapshot_registry(_sample_registry())
        frame = {"type": "telemetry", "metrics": tree}
        buf = encode_frame(frame)
        back = decode_frame(buf)
        assert back["metrics"] == tree
        # Re-encoding the decoded frame is byte-identical: the tree is
        # pure JSON, nothing lossy rides the wire.
        assert encode_frame(back) == buf

    def test_snapshot_layout(self):
        tree = snapshot_registry(_sample_registry())
        assert tree["version"] == SNAPSHOT_VERSION
        fams = tree["families"]
        counter = fams["demo_events_total"]
        assert counter["type"] == "counter"
        assert counter["children"][json.dumps(["a"])] == {"value": 5.0}
        hist = fams["demo_seconds"]
        child = hist["children"][json.dumps(["x"])]
        assert child["count"] == 3
        assert len(child["counts"]) == len(hist["bounds"]) + 1
        assert sum(child["counts"]) == 3
        assert math.isclose(child["sum"], 0.205)

    def test_delta_round_trip_is_exact(self):
        reg = _sample_registry()
        base = snapshot_registry(reg)
        reg.counter("demo_events_total", "events", labels=("kind",)).labels(
            kind="a"
        ).add(7)
        reg.counter("demo_events_total", "events", labels=("kind",)).labels(
            kind="c"
        ).inc()
        reg.histogram("demo_seconds", "latency", labels=("op",)).labels(
            op="x"
        ).observe(0.05)
        reg.gauge("demo_depth", "depth").set(-1.25)
        latest = snapshot_registry(reg)
        delta = snapshot_delta(base, latest)
        assert delta["delta"] is True
        # Unchanged children are dropped from the delta.
        d_counter = delta["families"]["demo_events_total"]["children"]
        assert json.dumps(["b"]) not in d_counter
        rebuilt = apply_delta(base, delta)
        assert rebuilt == latest

    def test_render_snapshot_prometheus(self):
        tree = snapshot_registry(_sample_registry())
        text = render_snapshot_prometheus(tree)
        assert 'demo_events_total{kind="a"} 5' in text
        assert "demo_depth 3.5" in text
        assert 'demo_seconds_count{op="x"} 3' in text
        assert check_text(text) == []


# ---------------------------------------------------------------------------
# WorkerTelemetry generation base accounting
# ---------------------------------------------------------------------------
class TestWorkerTelemetry:
    @staticmethod
    def _tree(value: float) -> dict:
        reg = MetricsRegistry()
        reg.counter("demo_events_total", "events", labels=("kind",)).labels(
            kind="a"
        ).add(value)
        return snapshot_registry(reg)

    def test_within_generation_is_cumulative_not_additive(self):
        mirror = MetricsRegistry()
        merger = WorkerTelemetry(mirror)
        merger.update("0", 0, self._tree(5))
        merger.update("0", 0, self._tree(8))
        samples = _counter_samples(
            mirror.render_prometheus(), "demo_events_total"
        )
        assert samples == {
            'demo_events_total{kind="a",worker="0"}': 8.0
        }

    def test_generation_bump_folds_base(self):
        mirror = MetricsRegistry()
        merger = WorkerTelemetry(mirror)
        merger.update("0", 0, self._tree(5))
        merger.update("0", 0, self._tree(8))
        # Respawn: generation bumps, fresh process restarts from zero.
        merger.update("0", 1, self._tree(2))
        samples = _counter_samples(
            mirror.render_prometheus(), "demo_events_total"
        )
        assert samples == {
            'demo_events_total{kind="a",worker="0"}': 10.0
        }
        # Re-shipping the same cumulative snapshot is idempotent.
        merger.update("0", 1, self._tree(2))
        samples = _counter_samples(
            mirror.render_prometheus(), "demo_events_total"
        )
        assert samples['demo_events_total{kind="a",worker="0"}'] == 10.0

    def test_latest_is_the_unmerged_current_generation(self):
        merger = WorkerTelemetry(MetricsRegistry())
        merger.update("1", 0, self._tree(5))
        merger.update("1", 1, self._tree(2))
        latest = merger.latest("1")
        assert latest["generation"] == 1
        child = latest["families"]["demo_events_total"]["children"]
        assert child[json.dumps(["a"])] == {"value": 2.0}
        assert merger.latest("9") is None
        assert merger.workers() == ["1"]

    def test_malformed_tree_raises(self):
        merger = WorkerTelemetry(MetricsRegistry())
        with pytest.raises(ValueError, match="unsupported telemetry snapshot"):
            merger.update("0", 0, {"version": 99, "families": {}})


# ---------------------------------------------------------------------------
# merged_percentiles
# ---------------------------------------------------------------------------
class TestMergedPercentiles:
    def test_merges_across_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        ha = a.histogram("lat_seconds", "lat", labels=("shard",))
        hb = b.histogram("lat_seconds", "lat", labels=("shard",))
        for __ in range(90):
            ha.labels(shard="0").observe(0.001)
        for __ in range(10):
            hb.labels(shard="1").observe(1.0)
        merged = a.get("lat_seconds").merged_percentiles(b.get("lat_seconds"))
        assert merged["count"] == 100
        assert merged["p50"] <= 0.01
        assert merged["p99"] >= 0.5
        solo = a.get("lat_seconds").merged_percentiles(None)
        assert solo["count"] == 90

    def test_bounds_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat_seconds", "lat", buckets=(0.1, 1.0)).observe(0.5)
        b.histogram("lat_seconds", "lat", buckets=(0.2, 2.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket ladder"):
            a.get("lat_seconds").merged_percentiles(b.get("lat_seconds"))


# ---------------------------------------------------------------------------
# Process-mode unified exposition
# ---------------------------------------------------------------------------
class TestProcessExposition:
    def test_worker_kernel_counters_in_exposition(self):
        svc = SamplerService(
            G_CONFIG, shards=4, seed=0, ingest_workers=2,
            workers_mode="process",
        )
        with svc:
            svc.submit(make_items(1 << 12))
            svc.flush()
            svc.refresh()
            text = svc.metrics.render_prometheus()
        heap = _counter_samples(text, "repro_ingest_heap_events_total")
        worker_labeled = {
            k: v for k, v in heap.items() if 'worker="' in k
        }
        assert worker_labeled, "no worker-labeled kernel counters shipped"
        assert sum(worker_labeled.values()) > 0
        # Worker-side apply-latency histograms: same family, worker label.
        assert 'repro_serving_ingest_apply_seconds_count{shard="0",worker="0"' \
            in text or any(
            line.startswith("repro_serving_ingest_apply_seconds_count{")
            and 'worker="' in line
            for line in text.splitlines()
        )
        # Both pipe ends metered, distinguishable by the worker label.
        frames = _counter_samples(text, "repro_serving_ipc_frames_total")
        assert any('worker="' in k for k in frames)
        assert any('worker="' not in k for k in frames)
        # Telemetry plane's own accounting.
        ships = _counter_samples(text, "repro_worker_telemetry_ships_total")
        assert all(v >= 1 for v in ships.values()) and ships
        # One header per family, buckets cumulative — promcheck clean.
        assert check_text(text) == []

    def test_stats_and_probe_carry_telemetry(self):
        svc = SamplerService(
            G_CONFIG, shards=4, seed=0, ingest_workers=2,
            workers_mode="process",
        )
        with svc:
            svc.submit(make_items(1 << 11))
            svc.flush()
            svc.refresh()
            stats = svc.stats()
            status = stats["ingest"]["worker_telemetry"]
            assert [s["worker"] for s in status] == [0, 1]
            assert all(s["ships"] >= 1 for s in status)
            assert all(s["clock_offset_ns"] is not None for s in status)
            assert stats["latency"]["ingest_apply_seconds"]["count"] >= 1
            probe = svc.health().probe("workers")
            assert probe.status == "pass"
            assert "telemetry fresh" in probe.detail

    def test_telemetry_off_keeps_dark_mode(self):
        svc = SamplerService(
            G_CONFIG, shards=4, seed=0, ingest_workers=2,
            workers_mode="process", worker_telemetry=False,
        )
        with svc:
            svc.submit(make_items(1 << 11))
            svc.flush()
            svc.refresh()
            assert svc._plane.telemetry_enabled is False
            text = svc.metrics.render_prometheus()
        assert not any(
            'worker="' in line
            for line in text.splitlines()
            if line.startswith("repro_ingest_heap_events_total")
        )
        # The telemetry families still expose headers (CI --require).
        assert "# TYPE repro_worker_telemetry_ships_total counter" in text

    def test_respawn_never_decreases_counters(self):
        svc = SamplerService(
            G_CONFIG, shards=4, seed=0, ingest_workers=2,
            workers_mode="process",
        )
        with svc:
            items = make_items(1 << 12)
            svc.submit(items)
            svc.flush()
            svc.refresh()

            def totals() -> dict:
                text = svc.metrics.render_prometheus()
                out = {}
                for name in (
                    "repro_ingest_heap_events_total",
                    "repro_ingest_settle_scans_total",
                    "repro_serving_ipc_frames_total",
                ):
                    for k, v in _counter_samples(text, name).items():
                        if 'worker="' in k:
                            out[k] = v
                return out

            before = totals()
            assert before
            link = svc._plane.links[0]
            link.proc.kill()
            assert _wait_until(lambda: link.restarts == 1)
            assert _wait_until(lambda: link.generation == 1)
            after_kill = totals()
            for key, value in before.items():
                assert after_kill.get(key, 0.0) >= value, key
            svc.submit(make_items(1 << 12, seed=7))
            svc.flush()
            svc.refresh()
            after_more = totals()
            for key, value in after_kill.items():
                assert after_more.get(key, 0.0) >= value, key
            heap = sum(
                v for k, v in after_more.items()
                if k.startswith("repro_ingest_heap_events_total")
            )
            heap_before = sum(
                v for k, v in before.items()
                if k.startswith("repro_ingest_heap_events_total")
            )
            assert heap > heap_before


# ---------------------------------------------------------------------------
# Merged Chrome trace
# ---------------------------------------------------------------------------
class TestMergedTrace:
    def test_export_chrome_merges_parent_and_workers(self):
        with TraceRecorder():
            svc = SamplerService(
                G_CONFIG, shards=4, seed=0, ingest_workers=2,
                workers_mode="process",
            )
            with svc:
                svc.submit(make_items(1 << 12))
                svc.flush()
                svc.refresh()
                buf = io.StringIO()
                n = svc.export_chrome(buf)
        assert n > 0
        payload = json.loads(buf.getvalue())
        events = payload["traceEvents"]
        spans = [e for e in events if e.get("ph") == "X"]
        pids = {e["pid"] for e in spans}
        assert len(pids) >= 2  # parent + at least one worker: real pids
        names = {e["name"] for e in spans}
        assert any(name.startswith("worker.") for name in names)
        # Per-(pid, tid) track timestamps are monotone in list order.
        last: dict = {}
        for e in spans:
            key = (e["pid"], e["tid"])
            assert e["ts"] >= last.get(key, float("-inf"))
            last[key] = e["ts"]
        meta = {
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e["name"] == "process_name"
        }
        assert "repro-serve" in meta
        assert any(name.startswith("worker-") for name in meta)

    def test_thread_mode_export_is_parent_only(self):
        with TraceRecorder():
            svc = SamplerService(G_CONFIG, shards=2, seed=0, ingest_workers=2)
            with svc:
                svc.submit(make_items(1 << 10))
                svc.flush()
                svc.refresh()
                buf = io.StringIO()
                svc.export_chrome(buf)
        payload = json.loads(buf.getvalue())
        pids = {e["pid"] for e in payload["traceEvents"]}
        assert len(pids) == 1


# ---------------------------------------------------------------------------
# Flight recorder and CLI integration
# ---------------------------------------------------------------------------
class TestIntegration:
    def test_flight_bundle_has_worker_sections(self, tmp_path):
        svc = SamplerService(
            G_CONFIG, shards=4, seed=0, ingest_workers=2,
            workers_mode="process",
        )
        with svc:
            svc.submit(make_items(1 << 11))
            svc.flush()
            svc.refresh()
            manifest = svc.dump(tmp_path / "bundle.zip")
        entries = set(manifest["entries"])
        assert "trace_chrome.json" in entries
        assert "workers/worker-00-metrics.json" in entries
        assert "workers/worker-01-trace.jsonl" in entries

    def test_cli_stats_per_worker(self, capsys):
        from repro.serving.cli import main

        code = main([
            "stats",
            "--config", json.dumps(G_CONFIG),
            "--workers-mode", "process",
            "--items", "4000",
            "--per-worker",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "-- worker 0 (generation" in out
        assert "-- worker 1 (generation" in out
