"""Tests for the smooth histogram framework ([BO07], Appendix A)."""

import numpy as np
import pytest

from repro.sketches.lp_norm import exact_fp
from repro.sketches.smooth_histogram import (
    ExactSuffixFp,
    SlidingWindowCountEstimate,
    SlidingWindowFpEstimate,
    SmoothHistogram,
    expected_checkpoints,
    fp_smoothness,
)
from repro.streams import zipf_stream


class TestFpSmoothness:
    def test_p_below_one(self):
        alpha, beta = fp_smoothness(0.5, 0.3)
        assert alpha == beta == 0.3

    def test_p_two(self):
        alpha, beta = fp_smoothness(2.0, 0.4)
        assert alpha == 0.4
        assert beta == pytest.approx((0.4 / 2.0) ** 2)

    def test_validates(self):
        with pytest.raises(ValueError):
            fp_smoothness(2.0, 0.0)
        with pytest.raises(ValueError):
            fp_smoothness(0.0, 0.5)


class TestExactSuffixFp:
    def test_tracks_fp_incrementally(self):
        est = ExactSuffixFp(2.0)
        for item in [0, 0, 1, 0]:
            est.update(item)
        assert est.estimate() == pytest.approx(10.0)  # 3² + 1²


class TestSmoothHistogram:
    def test_estimate_within_alpha_of_window_truth(self):
        """The deterministic (1 ± α) guarantee with exact inner
        estimators — for several windows and skews."""
        p, alpha = 2.0, 0.5
        __, beta = fp_smoothness(p, alpha)
        for seed, window in [(0, 64), (1, 200), (2, 333)]:
            stream = zipf_stream(32, 800, alpha=1.3, seed=seed)
            hist = SmoothHistogram(lambda: ExactSuffixFp(p), beta, window)
            for item in stream:
                hist.update(item)
            truth = exact_fp(stream.window_frequencies(window), p)
            est = hist.estimate()
            assert est <= truth * (1 + 1e-9)
            assert est >= (1 - alpha) * truth * (1 - 1e-9)

    def test_checkpoint_count_logarithmic(self):
        p, window = 1.0, 256
        hist = SmoothHistogram(lambda: ExactSuffixFp(p), beta=0.25, window=window)
        stream = zipf_stream(16, 3000, alpha=1.0, seed=3)
        for item in stream:
            hist.update(item)
        assert hist.checkpoint_count <= expected_checkpoints(0.25, 3000)

    def test_sandwich_brackets_truth(self):
        p, window = 2.0, 100
        __, beta = fp_smoothness(p, 0.5)
        hist = SmoothHistogram(lambda: ExactSuffixFp(p), beta, window)
        stream = zipf_stream(16, 500, alpha=1.1, seed=4)
        for item in stream:
            hist.update(item)
        older, younger = hist.sandwich()
        truth = exact_fp(stream.window_frequencies(window), p)
        assert younger <= truth * (1 + 1e-9)
        assert older >= truth * (1 - 1e-9)

    def test_short_stream_is_exact(self):
        hist = SmoothHistogram(lambda: ExactSuffixFp(2.0), beta=0.1, window=100)
        for item in [0, 0, 1]:
            hist.update(item)
        assert hist.estimate() == pytest.approx(5.0)

    def test_empty(self):
        hist = SmoothHistogram(lambda: ExactSuffixFp(2.0), beta=0.1, window=10)
        assert hist.estimate() == 0.0
        assert hist.sandwich() == (0.0, 0.0)

    def test_checkpoint_starts_sorted(self):
        hist = SmoothHistogram(lambda: ExactSuffixFp(1.0), beta=0.2, window=50)
        for item in zipf_stream(8, 300, seed=5):
            hist.update(item)
        starts = hist.checkpoint_starts()
        assert starts == sorted(starts)

    def test_validates_params(self):
        with pytest.raises(ValueError):
            SmoothHistogram(lambda: ExactSuffixFp(1.0), beta=0.0, window=10)
        with pytest.raises(ValueError):
            SmoothHistogram(lambda: ExactSuffixFp(1.0), beta=0.5, window=0)


class TestSlidingWindowFpEstimate:
    def test_lower_bound_property(self):
        """F ≤ L_p(window) ≤ 2F — the Theorem A.5 contract."""
        p, window = 2.0, 150
        for seed in range(3):
            stream = zipf_stream(32, 600, alpha=1.2, seed=seed)
            est = SlidingWindowFpEstimate(p, window, alpha=0.5)
            for item in stream:
                est.update(item)
            lp_true = exact_fp(stream.window_frequencies(window), p) ** (1.0 / p)
            f = est.lp_lower_bound()
            assert f <= lp_true * (1 + 1e-9)
            assert lp_true <= 2.0 * f * (1 + 1e-9)


class TestSlidingWindowCountEstimate:
    def test_tracks_window_count(self):
        est = SlidingWindowCountEstimate(window=64, beta=0.25)
        stream = zipf_stream(8, 500, seed=6)
        for item in stream:
            est.update(item)
        assert est.exact() == 64
        assert est.estimate() == pytest.approx(64, rel=0.3)
