"""Batch-ingestion equivalence: ``update_batch`` must leave every sampler
in a state whose (conditional) output distribution matches the scalar
``update()`` loop — and for single-pool and F0 samplers the state must be
*bitwise identical* for a fixed seed, chunking be damned."""

import numpy as np
import pytest

from helpers import assert_matches_distribution
from repro.core.f0_sampler import RandomOracleF0Sampler, TrulyPerfectF0Sampler
from repro.core.g_sampler import SamplerPool, SingleGSampler, TrulyPerfectGSampler
from repro.core.lp_sampler import TrulyPerfectLpSampler
from repro.core.measures import L1L2Measure, LpMeasure
from repro.engine.batch import BatchIngestor, ingest, supports_batch
from repro.sliding_window import (
    SlidingWindowF0Sampler,
    SlidingWindowGSampler,
    SlidingWindowLpSampler,
)
from repro.stats import f0_target, g_target, lp_target
from repro.streams import uniform_stream, zipf_stream

CHUNKINGS = [[5000], [1, 2, 3, 4994], [7] * (5000 // 7) + [5000 % 7], [2500, 2500]]


def _pool_states_equal(a: SamplerPool, b: SamplerPool) -> bool:
    sa, sb = a.snapshot(), b.snapshot()
    for key in sa:
        va, vb = sa[key], sb[key]
        same = np.array_equal(va, vb) if isinstance(va, np.ndarray) else va == vb
        if not same:
            return False
    return True


class TestPoolBatchExactState:
    @pytest.mark.parametrize("chunks", CHUNKINGS)
    def test_bitwise_identical_to_scalar(self, chunks):
        stream = np.asarray(zipf_stream(64, 5000, alpha=1.2, seed=3).items)
        scalar = SamplerPool(32, seed=42)
        for item in stream.tolist():
            scalar.update(item)
        batched = SamplerPool(32, seed=42)
        start = 0
        for size in chunks:
            batched.update_batch(stream[start:start + size])
            start += size
        assert start == stream.size
        assert _pool_states_equal(scalar, batched)
        assert scalar.finalize() == batched.finalize()

    @pytest.mark.parametrize(
        "n,m,alpha", [(4, 3000, 1.0), (1000, 3000, 2.0), (8, 100, 1.1), (10**7, 4000, 1.3)]
    )
    def test_identical_across_universe_shapes(self, n, m, alpha):
        """Covers both flush paths (bincount and huge-universe
        searchsorted) and near-empty tracked sets."""
        stream = np.asarray(zipf_stream(n, m, alpha=alpha, seed=7).items)
        scalar = SamplerPool(16, seed=11)
        for item in stream.tolist():
            scalar.update(item)
        batched = SamplerPool(16, seed=11)
        batched.update_batch(stream[: m // 3])
        batched.update_batch(stream[m // 3:])
        assert _pool_states_equal(scalar, batched)

    def test_empty_and_trivial_chunks(self):
        pool = SamplerPool(4, seed=0)
        pool.update_batch(np.array([], dtype=np.int64))
        assert pool.position == 0
        pool.update_batch(np.array([5], dtype=np.int64))
        assert pool.position == 1
        assert pool.finalize() == [(5, 1, 1)] * 4

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            SamplerPool(4, seed=0).update_batch(np.zeros((2, 2), dtype=np.int64))


class TestSamplerBatchEquivalence:
    def test_g_sampler_batch_distribution(self):
        stream = zipf_stream(32, 1500, alpha=1.1, seed=5)
        target = g_target(stream.frequencies(), L1L2Measure())

        def run(seed):
            sampler = TrulyPerfectGSampler(L1L2Measure(), m_hint=1500, seed=seed)
            sampler.update_batch(stream.items)
            return sampler.sample()

        assert_matches_distribution(run, target, trials=300)

    def test_lp_batch_distribution_p2(self):
        """p = 2 exercises the Misra–Gries weighted-batch path, whose ζ
        may differ from the scalar run; the conditional distribution may
        not."""
        stream = zipf_stream(32, 1500, alpha=1.3, seed=6)
        target = lp_target(stream.frequencies(), 2.0)

        def run(seed):
            sampler = TrulyPerfectLpSampler(p=2.0, n=32, seed=seed)
            sampler.update_batch(stream.items)
            return sampler.sample()

        assert_matches_distribution(run, target, trials=300)

    def test_lp_p_le_1_bitwise(self):
        """No normalizer for p ≤ 1 ⇒ full state equality with scalar."""
        stream = np.asarray(zipf_stream(64, 4000, alpha=1.1, seed=8).items)
        scalar = TrulyPerfectLpSampler(p=0.5, n=64, m_hint=4000, seed=13)
        for item in stream.tolist():
            scalar.update(item)
        batched = TrulyPerfectLpSampler(p=0.5, n=64, m_hint=4000, seed=13)
        batched.update_batch(stream)
        assert _pool_states_equal(scalar._pool, batched._pool)

    def test_f0_batch_bitwise(self):
        stream = np.asarray(zipf_stream(400, 6000, alpha=1.1, seed=5).items)
        scalar = TrulyPerfectF0Sampler(400, seed=9)
        for item in stream.tolist():
            scalar.update(item)
        batched = TrulyPerfectF0Sampler(400, seed=9)
        batched.update_batch(stream[:1000])
        batched.update_batch(stream[1000:])
        for cs, cb in zip(scalar._copies, batched._copies):
            assert list(cs._first) == list(cb._first)
            assert cs._counts == cb._counts
            assert cs._overflowed == cb._overflowed

    def test_oracle_f0_batch_bitwise(self):
        stream = np.asarray(uniform_stream(300, 4000, seed=2).items)
        scalar = RandomOracleF0Sampler(300, seed=1)
        for item in stream.tolist():
            scalar.update(item)
        batched = RandomOracleF0Sampler(300, seed=1)
        for start in range(0, 4000, 333):
            batched.update_batch(stream[start:start + 333])
        assert scalar._min_item == batched._min_item
        assert scalar._min_val == batched._min_val
        assert scalar._count == batched._count

    def test_sliding_window_f0_batch_bitwise(self):
        stream = np.asarray(zipf_stream(400, 6000, alpha=1.1, seed=5).items)
        scalar = SlidingWindowF0Sampler(400, window=500, seed=3)
        for item in stream.tolist():
            scalar.update(item)
        batched = SlidingWindowF0Sampler(400, window=500, seed=3)
        batched.update_batch(stream[:333])
        batched.update_batch(stream[333:])
        assert scalar._recent == batched._recent
        assert scalar._evict_horizon == batched._evict_horizon
        for cs, cb in zip(scalar._copies, batched._copies):
            assert cs.last_seen == cb.last_seen

    def test_sliding_window_g_batch_distribution(self):
        stream = zipf_stream(24, 1200, alpha=1.2, seed=4)
        window = 400
        target = g_target(stream.window_frequencies(window), LpMeasure(1.0))

        def run(seed):
            sampler = SlidingWindowGSampler(
                LpMeasure(1.0), window=window, instances=48, seed=seed
            )
            sampler.update_batch(stream.items)
            return sampler.sample()

        assert_matches_distribution(run, target, trials=300, max_fail_rate=0.6)

    def test_sliding_window_lp_batch_distribution(self):
        stream = zipf_stream(24, 900, alpha=1.4, seed=14)
        window = 300
        target = lp_target(stream.window_frequencies(window), 2.0)

        def run(seed):
            sampler = SlidingWindowLpSampler(p=2.0, window=window, seed=seed)
            sampler.update_batch(stream.items)
            return sampler.sample()

        assert_matches_distribution(run, target, trials=250)

    def test_sliding_window_batch_generation_layout(self):
        one = SlidingWindowGSampler(LpMeasure(1.0), window=100, instances=4, seed=0)
        one.update_batch(np.asarray(zipf_stream(16, 950, alpha=1.0, seed=0).items))
        assert one.position == 950
        assert one.generation_count == 2
        # Oldest kept generation starts at the last-but-one boundary.
        assert one._generations[0].start == 800
        assert one._generations[0].pool.position == 150


class TestIngestHelpers:
    def test_ingest_prefers_batch_and_matches_scalar(self):
        stream = zipf_stream(64, 3000, alpha=1.2, seed=21)
        a = SamplerPool(16, seed=2)
        ingest(a, stream, chunk_size=512)
        b = SamplerPool(16, seed=2)
        for item in stream:
            b.update(item)
        assert a.finalize() == b.finalize()

    def test_ingest_scalar_fallback(self):
        stream = zipf_stream(16, 500, alpha=1.0, seed=3)
        naive = SingleGSampler(LpMeasure(1.0), seed=4)
        assert not supports_batch(naive)
        assert ingest(naive, stream) == 500
        assert naive.position == 500

    def test_ingest_generator_input(self):
        pool = SamplerPool(8, seed=5)
        total = ingest(pool, (x for x in [1, 2, 3] * 100), chunk_size=64)
        assert total == 300
        assert pool.position == 300

    def test_batch_ingestor_buffers_and_flushes(self):
        stream = np.asarray(zipf_stream(32, 1000, alpha=1.0, seed=6).items)
        direct = SamplerPool(8, seed=7)
        direct.update_batch(stream)
        buffered = BatchIngestor(SamplerPool(8, seed=7), chunk_size=1000)
        for item in stream.tolist():
            buffered.push(item)
        assert buffered.pending == 0  # exactly one full flush
        assert buffered.total_ingested == 1000
        assert buffered.sampler.finalize() == direct.finalize()

    def test_batch_ingestor_partial_flush(self):
        buffered = BatchIngestor(SamplerPool(4, seed=8), chunk_size=64)
        for item in range(10):
            buffered.push(item)
        assert buffered.pending == 10
        assert buffered.sampler.position == 0
        buffered.flush()
        assert buffered.pending == 0
        assert buffered.sampler.position == 10

    def test_ingest_validates_chunk_size(self):
        with pytest.raises(ValueError):
            ingest(SamplerPool(2, seed=0), np.arange(5), chunk_size=0)

    def test_batch_ingestor_keeps_buffer_on_rejected_flush(self):
        buffered = BatchIngestor(TrulyPerfectF0Sampler(10, seed=0), chunk_size=64)
        for item in [1, 2, 99]:  # 99 is outside the universe [0, 10)
            buffered.push(item)
        with pytest.raises(ValueError):
            buffered.flush()
        assert buffered.pending == 3  # nothing silently dropped
        assert buffered.sampler.position == 0
