"""WindowBank: ladder construction, shared-boundary batching (bitwise
identical to scalar), multi-resolution queries, mergeable state, and the
registry / sharded-engine integration."""

import numpy as np
import pytest

from helpers import assert_matches_distribution
from repro.core.measures import HuberMeasure, LpMeasure
from repro.engine import ShardedSamplerEngine, build_sampler
from repro.engine.state import save_state, load_state, state_to_bytes
from repro.stats import lp_target
from repro.streams import with_arrivals, zipf_stream
from repro.windows import (
    TimeWindowF0Sampler,
    TimeWindowGSampler,
    TimeWindowLpSampler,
    WindowBank,
)

LADDER = (10.0, 30.0, 60.0)


def bursty_fixture(n=32, m=4000, seed=5):
    return with_arrivals(
        zipf_stream(n, m, alpha=1.2, seed=seed),
        process="bursty",
        rate=40.0,
        burst_rate=300.0,
        seed=seed + 1,
    )


class TestConstruction:
    def test_ladder_is_sorted(self):
        bank = WindowBank([60.0, 10.0, 30.0], p=2.0, seed=0)
        assert bank.resolutions == (10.0, 30.0, 60.0)

    def test_nesting_detection(self):
        assert WindowBank([10.0, 30.0, 60.0], p=2.0, seed=0).nests
        assert not WindowBank([10.0, 25.0], p=2.0, seed=0).nests

    def test_family_selection(self):
        g = WindowBank([10.0], measure=HuberMeasure(1.0), seed=0)
        assert isinstance(g.pool_sampler(10.0), TimeWindowGSampler)
        lp = WindowBank([10.0], p=2.0, seed=0)
        assert isinstance(lp.pool_sampler(10.0), TimeWindowLpSampler)
        with pytest.raises(ValueError, match="exactly one"):
            WindowBank([10.0], seed=0)
        with pytest.raises(ValueError, match="exactly one"):
            WindowBank([10.0], p=2.0, measure=HuberMeasure(1.0), seed=0)

    def test_f0_members_need_n(self):
        bank = WindowBank([10.0], p=2.0, seed=0)
        assert not bank.has_f0
        with pytest.raises(ValueError, match="n="):
            bank.f0_sampler(10.0)
        with pytest.raises(ValueError, match="f0_seed"):
            WindowBank([10.0], p=2.0, f0_seed=7, seed=0)
        with_f0 = WindowBank([10.0], p=2.0, n=64, seed=0)
        assert isinstance(with_f0.f0_sampler(10.0), TimeWindowF0Sampler)

    def test_bad_ladders(self):
        with pytest.raises(ValueError):
            WindowBank([], p=2.0)
        with pytest.raises(ValueError):
            WindowBank([0.0], p=2.0)
        with pytest.raises(ValueError):
            WindowBank([10.0, 10.0], p=2.0)

    def test_unknown_rung(self):
        bank = WindowBank([10.0], p=2.0, n=16, seed=0)
        with pytest.raises(ValueError, match="ladder"):
            bank.pool_sampler(99.0)
        with pytest.raises(ValueError, match="ladder"):
            bank.f0_sampler(99.0)


class TestIngestion:
    def test_batched_is_bitwise_identical_to_scalar(self):
        """Acceptance: WindowBank batched ingest ≡ scalar ingest,
        bitwise, for a fixed seed — on a nesting ladder with all member
        families (Lp pools + F0)."""
        ts = bursty_fixture()
        a = WindowBank(LADDER, p=2.0, n=32, instances=40, seed=11)
        b = WindowBank(LADDER, p=2.0, n=32, instances=40, seed=11)
        a.update_batch(ts.items, ts.timestamps)
        for item, when in ts:
            b.update(item, when)
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())

    def test_non_nesting_ladder_matches_too(self):
        ts = bursty_fixture(m=2000)
        ladder = (10.0, 25.0)
        a = WindowBank(ladder, measure=LpMeasure(1.0), instances=16, seed=2)
        b = WindowBank(ladder, measure=LpMeasure(1.0), instances=16, seed=2)
        assert not a.nests
        a.update_batch(ts.items, ts.timestamps)
        for item, when in ts:
            b.update(item, when)
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())

    def test_chunked_matches_one_shot(self):
        ts = bursty_fixture(m=2500)
        a = WindowBank(LADDER, p=2.0, n=32, instances=24, seed=4)
        b = WindowBank(LADDER, p=2.0, n=32, instances=24, seed=4)
        a.update_batch(ts.items, ts.timestamps)
        for start in range(0, len(ts), 777):
            b.update_batch(
                ts.items[start:start + 777], ts.timestamps[start:start + 777]
            )
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())

    def test_position_and_now(self):
        bank = WindowBank([5.0, 10.0], p=2.0, instances=8, seed=0)
        bank.update(3, 1.0)
        bank.update(4, 2.5)
        assert bank.position == 2
        assert bank.now == 2.5

    def test_validation(self):
        bank = WindowBank([5.0], p=2.0, instances=8, seed=0)
        with pytest.raises(ValueError):
            bank.update_batch([1, 2], [1.0])
        with pytest.raises(ValueError):
            bank.update_batch([1], [-1.0])
        bank.update(1, 5.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            bank.update_batch([1, 2], [6.0, 4.0])
        with pytest.raises(ValueError, match="non-decreasing"):
            bank.update_batch([1], [2.0])


class TestQueries:
    def test_multi_resolution_samples(self):
        ts = bursty_fixture()
        bank = WindowBank(LADDER, p=2.0, n=32, instances=100, seed=1)
        bank.update_batch(ts.items, ts.timestamps)
        per_rung = bank.sample_all()
        assert set(per_rung) == set(LADDER)
        res = bank.sample(10.0)
        assert res.is_item or res.is_fail
        distinct = bank.sample_distinct(30.0)
        assert distinct.is_item or distinct.is_fail

    def test_finest_rung_matches_l2_window_law(self):
        ts = bursty_fixture(n=16, m=3000, seed=9)
        target = lp_target(ts.window_frequencies(10.0), 2.0)

        def run(seed):
            bank = WindowBank(
                (10.0, 30.0), p=2.0, instances=150, seed=seed
            )
            bank.update_batch(ts.items, ts.timestamps)
            return bank.sample(10.0)

        assert_matches_distribution(run, target, trials=250)


class TestIdleWindows:
    """Regression: querying a fully-idle resolution must say "the window
    is empty" explicitly — never serve a sample from a generation whose
    content has entirely expired, and never a FAIL a caller would
    retry."""

    def test_query_past_idle_gap_is_explicit_empty(self):
        ts = bursty_fixture()
        bank = WindowBank(LADDER, p=2.0, n=32, instances=24, seed=3)
        bank.update_batch(ts.items, ts.timestamps)
        later = bank.now + 10 * max(LADDER)
        for horizon in LADDER:
            assert bank.sample(horizon, now=later).is_empty
            assert bank.sample_distinct(horizon, now=later).is_empty

    def test_compacted_idle_bank_answers_empty_at_watermark(self):
        ts = bursty_fixture()
        bank = WindowBank(LADDER, p=2.0, n=32, instances=24, seed=4)
        bank.update_batch(ts.items, ts.timestamps)
        before = bank.approx_size_bytes()
        freed = bank.compact(now=bank.now + 10 * max(LADDER))
        assert freed > 0
        assert bank.approx_size_bytes() < before
        # The clock watermark advanced, so even a now-less query sees
        # the empty window instead of resurrecting expired state.
        for horizon in LADDER:
            assert bank.sample(horizon).is_empty
            assert bank.sample_distinct(horizon).is_empty

    def test_partially_idle_ladder_only_fine_rungs_empty(self):
        bank = WindowBank((10.0, 1000.0), p=2.0, n=32, instances=24, seed=5)
        bank.update_batch([1, 2, 3], [1.0, 2.0, 3.0])
        later = 500.0  # fine rung idle, coarse rung still covers t≤3
        assert bank.sample(10.0, now=later).is_empty
        coarse = bank.sample(1000.0, now=later)
        assert coarse.is_item or coarse.is_fail
        assert not coarse.is_empty


class TestMergeableState:
    def test_snapshot_restore_continues_bitwise(self):
        ts = bursty_fixture()
        half = len(ts) // 2
        a = WindowBank(LADDER, p=2.0, n=32, instances=24, seed=6)
        a.update_batch(ts.items[:half], ts.timestamps[:half])
        b = WindowBank(LADDER, p=2.0, n=32, instances=24, seed=77)
        load_state(b, save_state(a))
        a.update_batch(ts.items[half:], ts.timestamps[half:])
        b.update_batch(ts.items[half:], ts.timestamps[half:])
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())

    def test_restore_rejects_mismatch(self):
        a = WindowBank([10.0], p=2.0, instances=8, seed=0)
        b = WindowBank([20.0], p=2.0, instances=8, seed=0)
        with pytest.raises(ValueError, match="ladder"):
            b.restore(a.snapshot())
        c = WindowBank([10.0], p=2.0, n=16, instances=8, seed=0)
        with pytest.raises(ValueError, match="F0"):
            c.restore(a.snapshot())
        with pytest.raises(ValueError):
            a.restore({"kind": "nope"})

    def test_merge_validates(self):
        a = WindowBank([10.0], p=2.0, instances=8, seed=0)
        with pytest.raises(TypeError):
            a.merge(object())
        b = WindowBank([20.0], p=2.0, instances=8, seed=1)
        with pytest.raises(ValueError, match="ladders"):
            a.merge(b)
        c = WindowBank([10.0], p=2.0, n=16, instances=8, seed=1)
        with pytest.raises(ValueError, match="F0"):
            a.merge(c)

    def test_merge_disjoint_partitions(self):
        ts = bursty_fixture()
        items = np.asarray(ts.items)
        even = items % 2 == 0
        a = WindowBank(LADDER, p=2.0, n=32, instances=40, seed=1, f0_seed=42)
        b = WindowBank(LADDER, p=2.0, n=32, instances=40, seed=2, f0_seed=42)
        a.update_batch(items[even], ts.timestamps[even])
        b.update_batch(items[~even], ts.timestamps[~even])
        a.merge(b)
        assert a.position == len(ts)
        for horizon in LADDER:
            res = a.sample(horizon)
            assert res.is_item or res.is_fail
            distinct = a.sample_distinct(horizon)
            assert distinct.is_item or distinct.is_fail

    def test_f0_merge_needs_shared_f0_seed(self):
        a = WindowBank([10.0], p=2.0, n=32, instances=8, seed=1)
        b = WindowBank([10.0], p=2.0, n=32, instances=8, seed=2)
        a.update(0, 1.0)
        b.update(1, 1.0)
        with pytest.raises(ValueError, match="seed"):
            a.merge(b)


class TestEngineIntegration:
    def test_registry_builds_bank(self):
        bank = build_sampler(
            {
                "kind": "window_bank",
                "resolutions": [10.0, 30.0],
                "measure": {"name": "huber", "tau": 2.0},
                "n": 64,
                "seed": 3,
            }
        )
        assert isinstance(bank, WindowBank)
        assert bank.resolutions == (10.0, 30.0)
        assert bank.has_f0

    def test_registry_rejects_leftover_keys(self):
        with pytest.raises(ValueError, match="frobnicate"):
            build_sampler(
                {
                    "kind": "window_bank",
                    "resolutions": [10.0],
                    "p": 2.0,
                    "frobnicate": 1,
                }
            )

    def test_sharded_bank_without_f0_seed_still_merges(self):
        """The engine auto-derives a shared f0_seed so a sharded bank
        with F0 members works out of the box."""
        ts = bursty_fixture(n=16, m=1000, seed=3)
        engine = ShardedSamplerEngine(
            {"kind": "window_bank", "resolutions": [10.0], "p": 2.0,
             "n": 16, "instances": 16},
            shards=4,
            seed=5,
        )
        engine.ingest(ts)
        merged = engine.merged_sampler()
        res = merged.sample_distinct(10.0)
        assert res.is_item or res.is_fail

    def test_bank_rejects_bad_chunk_without_partial_mutation(self):
        """A chunk with an out-of-universe item is rejected before any
        member ingests it — the bank stays consistent and retryable."""
        bank = WindowBank([10.0], p=2.0, n=8, instances=8, seed=0)
        bank.update(1, 1.0)
        with pytest.raises(ValueError, match="universe"):
            bank.update_batch([2, 99], [2.0, 3.0])
        with pytest.raises(ValueError, match="universe"):
            bank.update(99, 4.0)
        assert bank.position == 1  # nothing partially ingested
        assert bank.f0_sampler(10.0).position == 1
        bank.update_batch([2, 3], [2.0, 3.0])  # retry succeeds
        assert bank.position == 3
        assert bank.f0_sampler(10.0).position == 3

    def test_approximately_nesting_ladder_stays_bitwise(self):
        """Float ladders that only approximately nest (0.3 ≠ 3×0.1 in
        binary) must still batch bitwise-identically to scalar — the
        fast path detects boundary-straddling spans and falls back."""
        rng = np.random.RandomState(0)
        items = rng.randint(0, 16, size=600)
        ts = np.sort(rng.uniform(0.0, 3.0, size=600))
        ladder = (0.1, 0.3)
        a = WindowBank(ladder, p=2.0, instances=8, seed=3)
        b = WindowBank(ladder, p=2.0, instances=8, seed=3)
        a.update_batch(items, ts)
        for item, when in zip(items.tolist(), ts.tolist()):
            b.update(item, when)
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())

    def test_sharded_bank_answers_windowed_queries(self):
        """K=4 shards of a window_bank merge into exact multi-resolution
        answers (f0_seed shared via config, pool seeds per-shard)."""
        ts = bursty_fixture(n=16, m=3000, seed=9)
        target = lp_target(ts.window_frequencies(10.0), 2.0)

        def run(seed):
            engine = ShardedSamplerEngine(
                {
                    "kind": "window_bank",
                    "resolutions": [10.0, 30.0],
                    "p": 2.0,
                    "n": 16,
                    "instances": 150,
                    "f0_seed": 1234,
                },
                shards=4,
                seed=seed,
            )
            engine.ingest(ts)
            return engine.sample(horizon=10.0)

        assert_matches_distribution(run, target, trials=250, seed_offset=10**5)
