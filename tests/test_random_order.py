"""Tests for random-order samplers (Appendix C) and Stirling machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import assert_matches_distribution
from repro.random_order import (
    RandomOrderL2Sampler,
    RandomOrderLpSampler,
    falling_factorial,
    stirling2,
)
from repro.random_order.stirling import power_as_falling_factorials
from repro.stats import lp_target
from repro.streams import stream_from_frequencies

FREQ = np.array([2, 3, 5, 8, 12])
M = int(FREQ.sum())


class TestStirling:
    @given(x=st.integers(0, 30), p=st.integers(0, 8))
    @settings(max_examples=100, deadline=None)
    def test_lemma_c5_identity(self, x, p):
        """x^p = Σ_k S(p,k)·(x)_k (Lemma C.5)."""
        assert power_as_falling_factorials(x, p) == x**p

    def test_falling_factorial_values(self):
        assert falling_factorial(5, 0) == 1
        assert falling_factorial(5, 2) == 20
        assert falling_factorial(3, 4) == 0  # crosses zero

    def test_falling_factorial_validates(self):
        with pytest.raises(ValueError):
            falling_factorial(5, -1)

    def test_stirling_table(self):
        assert stirling2(3, 2) == 3
        assert stirling2(4, 2) == 7
        assert stirling2(5, 5) == 1
        assert stirling2(4, 0) == 0

    def test_stirling_validates(self):
        with pytest.raises(ValueError):
            stirling2(-1, 0)


class TestRandomOrderL2:
    def test_whole_stream_distribution(self):
        """Theorem 1.6: exactly f²/F2 on random-order streams."""
        target = lp_target(FREQ, 2.0)

        def run(seed):
            stream = stream_from_frequencies(FREQ, order="random", seed=50_000 + seed)
            return RandomOrderL2Sampler(
                len(FREQ), horizon=M, seed=seed
            ).run(stream)

        assert_matches_distribution(run, target, trials=5000, max_fail_rate=1 / 3)

    def test_fail_probability_bounded(self):
        fails = 0
        trials = 600
        for seed in range(trials):
            stream = stream_from_frequencies(FREQ, order="random", seed=90_000 + seed)
            res = RandomOrderL2Sampler(len(FREQ), horizon=M, seed=seed).run(stream)
            if res.is_fail:
                fails += 1
        assert fails / trials <= 1 / 3 + 0.05

    def test_sliding_mode_expires(self):
        s = RandomOrderL2Sampler(4, horizon=10, sliding=True, seed=0)
        # 30 updates of item 0 then 30 of item 1; window = 10.
        s.extend([0] * 30)
        s.extend([1] * 30)
        res = s.sample()
        if res.is_item:
            assert res.item == 1

    def test_capacity_respected(self):
        s = RandomOrderL2Sampler(2, horizon=1000, capacity=10, seed=0)
        s.extend([0] * 2000)  # every pair collides
        assert s.buffer_size <= 20

    def test_empty(self):
        s = RandomOrderL2Sampler(4, horizon=10, seed=0)
        assert s.sample().is_empty

    def test_validates_horizon(self):
        with pytest.raises(ValueError):
            RandomOrderL2Sampler(4, horizon=1)


class TestRandomOrderLp:
    def test_l3_distribution(self):
        """Theorem 1.7 for p = 3, with enough blocks for the
        concentration regime."""
        freq = FREQ * 4
        m = int(freq.sum())
        target = lp_target(freq, 3.0)

        def run(seed):
            stream = stream_from_frequencies(freq, order="random", seed=70_000 + seed)
            return RandomOrderLpSampler(3, horizon=m, seed=seed).run(stream)

        assert_matches_distribution(run, target, trials=5000, max_fail_rate=0.5)

    def test_block_size_formula(self):
        s = RandomOrderLpSampler(3, horizon=900, seed=0)
        assert s.block_size == 30  # 900^{1/2}

    def test_level_coins_are_probabilities(self):
        """Every level-q coin α_q = S(p,q)(m)_q/m^p must be in [0, 1]."""
        for p, horizon in [(3, 10), (4, 16), (5, 40)]:
            s = RandomOrderLpSampler(p, horizon=horizon, seed=0)
            assert all(0.0 <= a <= 1.0 for a in s._alpha)

    def test_horizon_must_cover_p(self):
        with pytest.raises(ValueError):
            RandomOrderLpSampler(4, horizon=3, seed=0)

    def test_rejects_non_integer_p(self):
        with pytest.raises(ValueError):
            RandomOrderLpSampler(2.5, horizon=100)

    def test_empty(self):
        s = RandomOrderLpSampler(3, horizon=100, seed=0)
        assert s.sample().is_empty

    def test_constant_space_under_maximal_collisions(self):
        """The reservoir pick keeps O(1) state even when every tuple in
        every block collides."""
        s = RandomOrderLpSampler(3, horizon=4000, seed=0)
        s.extend([0] * 4000)
        assert s.insertions_seen > 1000  # plenty of insertion events...
        assert s.sample().item == 0  # ...but only one held pick
