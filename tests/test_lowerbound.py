"""Tests for the Theorem 1.2 reduction and the γ ↔ memory trade-off."""

import numpy as np
import pytest

from repro.lowerbound import (
    EqualityReduction,
    ExactTurnstileSampler,
    FingerprintSampler,
    measure_advantage,
    refutation_bound_bits,
)


class TestFingerprintSampler:
    def test_equal_vectors_always_bot(self):
        """x = y ⇒ f = 0 ⇒ fingerprint 0 ⇒ ⊥ with certainty."""
        rng = np.random.default_rng(0)
        for seed in range(50):
            x = rng.integers(0, 2, size=24)
            s = FingerprintSampler(24, bits=8, seed=seed)
            for i, v in enumerate(x):
                if v:
                    s.update(i, int(v))
            for i, v in enumerate(x):
                if v:
                    s.update(i, -int(v))
            assert s.sample().is_empty

    def test_unequal_rarely_bot(self):
        """x ≠ y ⇒ ⊥ only on a fingerprint collision (≈ 2^{-bits})."""
        bots = 0
        trials = 800
        for seed in range(trials):
            s = FingerprintSampler(16, bits=8, seed=seed)
            s.update(3, 1)  # f = e_3 ≠ 0
            if s.sample().is_empty:
                bots += 1
        assert bots / trials < 0.05

    def test_collision_rate_tracks_bits(self):
        """γ ≈ 2^{-bits}: 2 bits collide far more often than 8."""

        def collision_rate(bits, trials=1500):
            hits = 0
            for seed in range(trials):
                s = FingerprintSampler(16, bits=bits, seed=seed)
                s.update(1, 1)
                if s.sample().is_empty:
                    hits += 1
            return hits / trials

        rate2 = collision_rate(2)
        rate8 = collision_rate(8)
        assert rate2 == pytest.approx(0.25, abs=0.08)
        assert rate8 < 0.05

    def test_state_bits(self):
        assert FingerprintSampler(8, bits=12, seed=0).state_bits == 12

    def test_validates_bits(self):
        with pytest.raises(ValueError):
            FingerprintSampler(8, bits=0)


class TestExactSampler:
    def test_truly_perfect_on_turnstile(self):
        s = ExactTurnstileSampler(4, seed=0)
        s.update(1, 3)
        s.update(1, -3)
        s.update(2, 5)
        res = s.sample()
        assert res.is_item
        assert res.item == 2

    def test_empty(self):
        assert ExactTurnstileSampler(4, seed=0).sample().is_empty


class TestReduction:
    def test_exact_sampler_solves_equality_perfectly(self):
        red = EqualityReduction(lambda seed: ExactTurnstileSampler(16, seed=seed))
        rng = np.random.default_rng(1)
        for trial in range(30):
            x = rng.integers(0, 2, size=16)
            y = x.copy()
            y[int(rng.integers(0, 16))] ^= 1
            assert red.decide(x, x.copy(), seed=trial) is True
            assert red.decide(x, y, seed=trial) is False

    def test_advantage_grows_with_bits(self):
        """The executable content of Theorem 1.2: refutation error tracks
        2^{-bits}, so advantage grows with memory."""
        reports = {
            bits: measure_advantage(
                lambda seed, b=bits: FingerprintSampler(16, bits=b, seed=seed),
                n=16,
                trials=250,
                state_bits=bits,
            )
            for bits in (1, 4, 10)
        }
        assert reports[1].refutation_error > reports[4].refutation_error
        assert reports[4].refutation_error >= reports[10].refutation_error
        assert reports[10].advantage > 0.9
        # Verification side is error-free for the fingerprint family.
        assert all(r.verification_error == 0.0 for r in reports.values())

    def test_memory_matches_bound(self):
        """Measured γ vs the Ω(log 1/γ) bound: our b-bit family sits within
        a constant of the bound's prediction."""
        report = measure_advantage(
            lambda seed: FingerprintSampler(16, bits=6, seed=seed),
            n=16,
            trials=400,
            state_bits=6,
        )
        gamma = max(report.refutation_error, 1.0 / 400)
        bound = refutation_bound_bits(16, gamma)
        # The construction's memory is within a small factor of the bound.
        assert report.state_bits >= 0.2 * bound


class TestBoundFormula:
    def test_monotone_in_inverse_gamma(self):
        assert refutation_bound_bits(64, 1e-6) > refutation_bound_bits(64, 1e-2)

    def test_caps_at_n(self):
        assert refutation_bound_bits(10, 1e-30) <= 10

    def test_validates_gamma(self):
        with pytest.raises(ValueError):
            refutation_bound_bits(10, 0.0)
