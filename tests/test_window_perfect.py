"""Tests for the Algorithm 7 sliding-window perfect Lp sampler
(repro.perfect.window_lp)."""

import numpy as np
import pytest

from repro.perfect import SlidingWindowPerfectLpSampler
from repro.stats import lp_target, total_variation
from repro.stats.harness import collect_outcomes, empirical_distribution
from repro.streams import Stream, stream_from_frequencies


class TestSlidingWindowPerfectLp:
    def test_output_close_to_window_lp_target(self):
        """Perfect (γ > 0): TV to the window Lp target is small but need
        not vanish."""
        p = 0.5
        freq = np.array([1, 2, 4, 8, 16])
        m = int(freq.sum())
        target = lp_target(freq, p)

        def run(seed):
            stream = stream_from_frequencies(freq, order="random",
                                             seed=40_000 + seed)
            s = SlidingWindowPerfectLpSampler(
                p, 5, window=m, duplication=16, seed=seed
            )
            return s.run(stream)

        counts, fails, __ = collect_outcomes(run, trials=800)
        assert sum(counts.values()) > 200
        dist = empirical_distribution(counts, 5)
        assert total_variation(dist, target) < 0.2

    def test_expired_heavy_item_forgotten(self):
        """An old burst outside the window must not dominate samples."""
        p = 0.5
        items = [0] * 300 + [1 + (i % 4) for i in range(200)]
        stream = Stream(items, n=5)
        zero_hits = 0
        trials = 120
        accepted = 0
        for seed in range(trials):
            s = SlidingWindowPerfectLpSampler(
                p, 5, window=200, duplication=8, seed=seed
            )
            res = s.run(stream)
            if res.is_item:
                accepted += 1
                zero_hits += res.item == 0
        assert accepted > 10
        assert zero_hits / max(accepted, 1) < 0.2

    def test_fail_rate_reasonable(self):
        p = 0.5
        freq = np.array([3, 6, 12, 24])
        stream = stream_from_frequencies(freq, order="random", seed=50)
        fails = 0
        trials = 100
        for seed in range(trials):
            s = SlidingWindowPerfectLpSampler(
                p, 4, window=int(freq.sum()), duplication=8, seed=seed
            )
            if s.run(stream).is_fail:
                fails += 1
        assert fails / trials < 0.8  # constant success probability

    def test_empty_stream(self):
        s = SlidingWindowPerfectLpSampler(0.5, 4, window=10, seed=0)
        assert s.sample().is_empty

    def test_validates_params(self):
        with pytest.raises(ValueError):
            SlidingWindowPerfectLpSampler(1.5, 4, window=10)
        with pytest.raises(ValueError):
            SlidingWindowPerfectLpSampler(0.5, 4, window=0)

    def test_rolling_mass_matches_window(self):
        s = SlidingWindowPerfectLpSampler(0.5, 8, window=5, duplication=2,
                                          seed=1)
        s.extend([0, 1, 2, 3, 4, 5, 6])
        assert len(s._recent_weights) == 5
