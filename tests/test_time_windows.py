"""Time-based sliding-window samplers: covering invariants, bitwise
batch/scalar identity, statistical exactness (single-node and merged
across K=8 shards), snapshot/restore, and merge semantics."""

import numpy as np
import pytest

from helpers import assert_matches_distribution
from repro.core.measures import L1L2Measure, LpMeasure
from repro.engine import ShardedSamplerEngine
from repro.engine.state import save_state, load_state, state_to_bytes
from repro.stats import f0_target, g_target, lp_target
from repro.streams import (
    TimestampedStream,
    sparse_support_stream,
    with_arrivals,
    zipf_stream,
)
from repro.windows import (
    TimeWindowF0Sampler,
    TimeWindowGSampler,
    TimeWindowLpSampler,
)

HORIZON = 10.0


def bursty_fixture(n=24, m=4000, seed=3):
    """A bursty timestamped stream whose active window differs sharply
    from the whole stream (so window-exactness is actually probed)."""
    return with_arrivals(
        zipf_stream(n, m, alpha=1.1, seed=seed),
        process="bursty",
        rate=50.0,
        burst_rate=400.0,
        seed=seed + 1,
    )


class TestTimeWindowGSampler:
    def test_generations_follow_buckets(self):
        s = TimeWindowGSampler(LpMeasure(1.0), horizon=10.0, instances=4, seed=0)
        assert s.generation_count == 0
        s.update(1, 0.5)
        assert s.generation_count == 1
        s.update(1, 9.9)
        assert s.generation_count == 1
        s.update(2, 10.1)  # crosses the k·H boundary
        assert s.generation_count == 2
        s.update(3, 25.0)  # skips a bucket entirely
        assert s.generation_count == 2
        assert s.position == 4
        assert s.now == 25.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeWindowGSampler(LpMeasure(1.0), horizon=0.0)
        with pytest.raises(ValueError):
            TimeWindowGSampler(LpMeasure(1.0), horizon=1.0, delta=2.0)
        with pytest.raises(ValueError):
            TimeWindowGSampler(LpMeasure(1.0), horizon=1.0, instances=0)
        s = TimeWindowGSampler(LpMeasure(1.0), horizon=1.0, instances=2, seed=0)
        s.update(1, 5.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            s.update(1, 4.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            s.update_batch([1, 2], [4.0, 4.5])
        with pytest.raises(ValueError, match="non-decreasing"):
            s.update_batch([1, 2], [6.0, 5.5])
        with pytest.raises(ValueError):
            s.update_batch([1, 2], [6.0])
        with pytest.raises(ValueError):
            s.sample(now=1.0)  # earlier than ingested

    def test_default_instances_sized_from_rate(self):
        s = TimeWindowGSampler(
            LpMeasure(1.0), horizon=10.0, expected_window_count=100, seed=0
        )
        # L1: acceptance ≥ Ŵ/(2·Ŵ) = 1/2 ⇒ R = ⌈ln(1/0.05)·2⌉ = 6.
        assert s.instances == 6

    def test_batch_is_bitwise_identical_to_scalar(self):
        ts = bursty_fixture()
        a = TimeWindowGSampler(L1L2Measure(), horizon=HORIZON, instances=16, seed=7)
        b = TimeWindowGSampler(L1L2Measure(), horizon=HORIZON, instances=16, seed=7)
        for item, when in ts:
            a.update(item, when)
        b.update_batch(ts.items, ts.timestamps)
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())

    def test_chunked_batching_matches_one_shot(self):
        ts = bursty_fixture()
        a = TimeWindowGSampler(L1L2Measure(), horizon=HORIZON, instances=16, seed=9)
        b = TimeWindowGSampler(L1L2Measure(), horizon=HORIZON, instances=16, seed=9)
        a.update_batch(ts.items, ts.timestamps)
        for start in range(0, len(ts), 333):
            b.update_batch(
                ts.items[start:start + 333], ts.timestamps[start:start + 333]
            )
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())

    def test_window_exactness_single_node(self):
        """Acceptance: TV between empirical sample frequencies and the
        true G(f_i)/F_G over the active time window passes the harness."""
        ts = bursty_fixture()
        target = g_target(ts.window_frequencies(HORIZON), LpMeasure(1.0))

        def run(seed):
            s = TimeWindowGSampler(
                LpMeasure(1.0), horizon=HORIZON, instances=64, seed=seed
            )
            return s.run(ts)

        assert_matches_distribution(run, target, trials=300)

    def test_window_exactness_merged_k8_shards(self):
        """Acceptance: K=8 hash-partitioned shards, merged, same law."""
        ts = bursty_fixture()
        target = g_target(ts.window_frequencies(HORIZON), LpMeasure(1.0))

        def run(seed):
            engine = ShardedSamplerEngine(
                {
                    "kind": "tw_g",
                    "measure": {"name": "lp", "p": 1.0},
                    "horizon": HORIZON,
                    "instances": 64,
                },
                shards=8,
                seed=seed,
            )
            engine.ingest(ts)
            return engine.sample()

        assert_matches_distribution(run, target, trials=300, seed_offset=10**6)

    def test_sample_at_later_now_expires_mass(self):
        """Querying after a quiet period rejects expired instances."""
        ts = TimestampedStream([5] * 50 + [9] * 50,
                               np.linspace(1.0, 2.0, 100), n=16)
        s = TimeWindowGSampler(LpMeasure(1.0), horizon=1.5, instances=32, seed=0)
        s.update_batch(ts.items, ts.timestamps)
        res = s.sample(now=100.0)  # whole stream expired
        assert not res.is_item

    def test_empty_sampler(self):
        s = TimeWindowGSampler(LpMeasure(1.0), horizon=1.0, instances=2, seed=0)
        assert s.sample().is_empty

    def test_snapshot_restore_continues_bitwise(self):
        ts = bursty_fixture()
        half = len(ts) // 2
        a = TimeWindowGSampler(L1L2Measure(), horizon=HORIZON, instances=16, seed=1)
        a.update_batch(ts.items[:half], ts.timestamps[:half])
        b = TimeWindowGSampler(L1L2Measure(), horizon=HORIZON, instances=16, seed=99)
        load_state(b, save_state(a))
        a.update_batch(ts.items[half:], ts.timestamps[half:])
        b.update_batch(ts.items[half:], ts.timestamps[half:])
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())
        assert a.sample().item == b.sample().item

    def test_restore_rejects_mismatch(self):
        a = TimeWindowGSampler(LpMeasure(1.0), horizon=1.0, instances=2, seed=0)
        b = TimeWindowGSampler(LpMeasure(2.0), horizon=1.0, instances=2, seed=0)
        with pytest.raises(ValueError, match="measure"):
            b.restore(a.snapshot())
        c = TimeWindowGSampler(LpMeasure(1.0), horizon=2.0, instances=2, seed=0)
        with pytest.raises(ValueError, match="horizon"):
            c.restore(a.snapshot())
        with pytest.raises(ValueError, match="snapshot"):
            a.restore({"kind": "nope"})

    def test_merge_validates(self):
        a = TimeWindowGSampler(LpMeasure(1.0), horizon=1.0, instances=2, seed=0)
        with pytest.raises(TypeError):
            a.merge(object())
        b = TimeWindowGSampler(LpMeasure(1.0), horizon=2.0, instances=2, seed=0)
        with pytest.raises(ValueError, match="horizon"):
            a.merge(b)

    def test_merge_with_late_starting_shard_keeps_its_mass(self):
        """A shard whose first update lands after the covering bucket
        boundary still contributes its active items exactly: its next
        generation IS its substream since the boundary (it had no
        earlier updates), and the merged covering generation must
        include it."""
        H = 10.0
        # Shard B (evens): active in buckets 4 and 5.
        b_items = np.array([0, 2] * 20 + [2] * 10)
        b_ts = np.concatenate([
            np.linspace(41.0, 49.5, 40),   # bucket 4
            np.linspace(50.5, 54.5, 10),   # bucket 5
        ])
        # Shard A (odds): first update ever arrives in bucket 5.
        a_items = np.array([1] * 40)
        a_ts = np.linspace(50.2, 54.8, 40)
        all_items = np.concatenate([b_items, a_items])
        all_ts = np.concatenate([b_ts, a_ts])
        window = all_items[all_ts > 55.0 - H]
        target = g_target(np.bincount(window, minlength=4), LpMeasure(1.0))

        def run_ab(seed):
            a = TimeWindowGSampler(LpMeasure(1.0), horizon=H, instances=64, seed=seed)
            b = TimeWindowGSampler(
                LpMeasure(1.0), horizon=H, instances=64, seed=seed + 10**6
            )
            a.update_batch(a_items, a_ts)
            b.update_batch(b_items, b_ts)
            a.merge(b)  # self lacks bucket 4 → borrows its bucket-5 gen
            return a.sample(now=55.0)

        def run_ba(seed):
            a = TimeWindowGSampler(LpMeasure(1.0), horizon=H, instances=64, seed=seed)
            b = TimeWindowGSampler(
                LpMeasure(1.0), horizon=H, instances=64, seed=seed + 10**6
            )
            a.update_batch(a_items, a_ts)
            b.update_batch(b_items, b_ts)
            b.merge(a)  # other lacks bucket 4 → same rule, other side
            return b.sample(now=55.0)

        assert_matches_distribution(run_ab, target, trials=300)
        assert_matches_distribution(run_ba, target, trials=300, seed_offset=10**7)

    def test_merge_with_lagging_shard(self):
        """A shard idle in the newest bucket still merges exactly: its
        missing generation means an empty contribution."""
        busy = TimeWindowGSampler(LpMeasure(1.0), horizon=10.0, instances=8, seed=1)
        idle = TimeWindowGSampler(LpMeasure(1.0), horizon=10.0, instances=8, seed=2)
        # Disjoint universes: busy gets evens, idle gets odds.
        busy.update_batch([0, 2, 4, 6], [1.0, 5.0, 12.0, 15.0])
        idle.update_batch([1, 3], [2.0, 6.0])  # nothing after t=10
        busy.merge(idle)
        assert busy.position == 6
        assert busy.now == 15.0
        res = busy.sample()
        assert res.is_item or res.is_fail


class TestTimeWindowLpSampler:
    def test_requires_p_at_least_one(self):
        with pytest.raises(ValueError):
            TimeWindowLpSampler(0.5, horizon=1.0)

    def test_p1_needs_no_normalizer(self):
        s = TimeWindowLpSampler(1.0, horizon=5.0, instances=8, seed=0)
        s.update_batch([1, 2, 3], [0.1, 0.2, 0.3])
        assert s.normalizer() == 1.0

    def test_normalizer_certifies_window_linf(self):
        ts = bursty_fixture()
        s = TimeWindowLpSampler(2.0, horizon=HORIZON, instances=32, seed=0)
        s.update_batch(ts.items, ts.timestamps)
        linf = int(ts.window_frequencies(HORIZON).max())
        assert s.normalizer() >= linf**2 - (linf - 1) ** 2

    def test_batch_is_bitwise_identical_to_scalar(self):
        ts = bursty_fixture(m=2000)
        a = TimeWindowLpSampler(2.0, horizon=HORIZON, instances=16, seed=5)
        b = TimeWindowLpSampler(2.0, horizon=HORIZON, instances=16, seed=5)
        for item, when in ts:
            a.update(item, when)
        b.update_batch(ts.items, ts.timestamps)
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())

    def test_window_exactness_l2(self):
        ts = bursty_fixture(n=16, m=3000)
        target = lp_target(ts.window_frequencies(HORIZON), 2.0)

        def run(seed):
            s = TimeWindowLpSampler(
                2.0, horizon=HORIZON, instances=150, seed=seed
            )
            return s.run(ts)

        assert_matches_distribution(run, target, trials=250)

    def test_merge_combines_normalizers(self):
        items = np.asarray(bursty_fixture(n=32, m=2000).items)
        ts = bursty_fixture(n=32, m=2000).timestamps
        even = items % 2 == 0
        a = TimeWindowLpSampler(2.0, horizon=HORIZON, instances=32, seed=1)
        b = TimeWindowLpSampler(2.0, horizon=HORIZON, instances=32, seed=2)
        a.update_batch(items[even], ts[even])
        b.update_batch(items[~even], ts[~even])
        a.merge(b)
        # Merged ζ certifies the merged *window's* max increment (the
        # covering substream contains the window; it need not contain
        # the whole stream).
        active = items[ts > a.now - HORIZON]
        linf = int(np.bincount(active, minlength=32).max())
        assert a.normalizer() >= linf**2 - (linf - 1) ** 2

    def test_snapshot_restore_roundtrip(self):
        ts = bursty_fixture(m=1500)
        a = TimeWindowLpSampler(2.0, horizon=HORIZON, instances=16, seed=3)
        a.update_batch(ts.items, ts.timestamps)
        b = TimeWindowLpSampler(2.0, horizon=HORIZON, instances=16, seed=44)
        load_state(b, save_state(a))
        assert b.normalizer() == a.normalizer()
        assert state_to_bytes(b.snapshot()) == state_to_bytes(a.snapshot())


class TestTimeWindowF0Sampler:
    def test_validation(self):
        with pytest.raises(ValueError):
            TimeWindowF0Sampler(0, horizon=1.0)
        with pytest.raises(ValueError):
            TimeWindowF0Sampler(16, horizon=0.0)
        with pytest.raises(ValueError):
            TimeWindowF0Sampler(16, horizon=1.0, delta=0.0)
        s = TimeWindowF0Sampler(16, horizon=1.0, seed=0)
        with pytest.raises(ValueError, match="universe"):
            s.update(99, 0.1)
        s.update(3, 5.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            s.update(3, 4.0)
        with pytest.raises(ValueError, match="universe"):
            s.update_batch([99], [6.0])
        with pytest.raises(ValueError):
            s.sample(now=1.0)

    def test_empty(self):
        assert TimeWindowF0Sampler(16, horizon=1.0, seed=0).sample().is_empty

    def test_batch_is_bitwise_identical_to_scalar(self):
        ts = bursty_fixture(n=100, m=3000)
        a = TimeWindowF0Sampler(100, horizon=HORIZON, seed=5)
        b = TimeWindowF0Sampler(100, horizon=HORIZON, seed=5)
        for item, when in ts:
            a.update(item, when)
        b.update_batch(ts.items, ts.timestamps)
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())

    def test_sparse_regime_uses_recent_table(self):
        stream = sparse_support_stream(400, support=5, m=500, seed=1)
        ts = with_arrivals(stream, process="uniform", rate=100.0)
        s = TimeWindowF0Sampler(400, horizon=2.0, seed=2)
        s.update_batch(ts.items, ts.timestamps)
        res = s.sample()
        assert res.is_item
        assert res.metadata["regime"] == "recent"

    def test_window_exactness(self):
        ts = bursty_fixture(n=24, m=4000)
        target = f0_target(ts.window_frequencies(HORIZON))

        def run(seed):
            s = TimeWindowF0Sampler(24, horizon=HORIZON, seed=seed)
            return s.run(ts)

        assert_matches_distribution(run, target, trials=300)

    def test_sharded_exactness_shares_seed(self):
        ts = bursty_fixture(n=24, m=4000)
        target = f0_target(ts.window_frequencies(HORIZON))

        def run(seed):
            engine = ShardedSamplerEngine(
                {"kind": "tw_f0", "n": 24, "horizon": HORIZON},
                shards=8,
                seed=seed,
            )
            engine.ingest(ts)
            return engine.sample()

        assert_matches_distribution(run, target, trials=300, seed_offset=10**6)

    def test_merge_requires_shared_subsets(self):
        a = TimeWindowF0Sampler(100, horizon=1.0, seed=1)
        b = TimeWindowF0Sampler(100, horizon=1.0, seed=2)
        with pytest.raises(ValueError, match="seed"):
            a.merge(b)
        with pytest.raises(TypeError):
            a.merge(object())
        c = TimeWindowF0Sampler(100, horizon=2.0, seed=1)
        with pytest.raises(ValueError, match="layout"):
            a.merge(c)

    def test_merge_lru_eviction_keeps_certificate(self):
        """Merging two full LRU tables evicts down to capacity and
        records the displaced timestamps in the horizon."""
        n = 16  # threshold = 4, capacity 5
        a = TimeWindowF0Sampler(n, horizon=100.0, seed=7)
        b = TimeWindowF0Sampler(n, horizon=100.0, seed=7)
        for i, item in enumerate([0, 1, 2, 3, 4]):
            a.update(item, 1.0 + i)
        for i, item in enumerate([5, 6, 7, 8, 9]):
            b.update(item, 1.5 + i)
        a.merge(b)
        assert a.position == 10
        assert len(a._recent) == a.threshold + 1
        assert a._evict_horizon > 0  # merge displaced some timestamps

    def test_snapshot_restore_continues_bitwise(self):
        ts = bursty_fixture(n=50, m=2000)
        half = len(ts) // 2
        a = TimeWindowF0Sampler(50, horizon=HORIZON, seed=3)
        a.update_batch(ts.items[:half], ts.timestamps[:half])
        b = TimeWindowF0Sampler(50, horizon=HORIZON, seed=91)
        load_state(b, save_state(a))
        a.update_batch(ts.items[half:], ts.timestamps[half:])
        b.update_batch(ts.items[half:], ts.timestamps[half:])
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())
        assert a.sample().item == b.sample().item

    def test_restore_rejects_mismatch(self):
        a = TimeWindowF0Sampler(16, horizon=1.0, seed=0)
        b = TimeWindowF0Sampler(32, horizon=1.0, seed=0)
        with pytest.raises(ValueError):
            b.restore(a.snapshot())
        with pytest.raises(ValueError):
            a.restore({"kind": "garbage"})
