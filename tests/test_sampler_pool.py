"""Tests for the shared-counter reservoir pool (Theorem 3.1's O(1)-update
data structure) — including statistical equivalence with the literal
Algorithm 1."""

from collections import Counter

import numpy as np
import pytest
from scipy import stats as sps

from repro.core.g_sampler import SamplerPool
from repro.core.reservoir import TimestampedReservoir
from repro.streams import zipf_stream


class TestSamplerPoolInvariants:
    def test_counts_at_least_one(self):
        pool = SamplerPool(16, seed=0)
        pool.extend(zipf_stream(8, 500, seed=1))
        for item, count, ts in pool.finalize():
            assert count >= 1
            assert 1 <= ts <= 500

    def test_tracked_items_bounded_by_instances(self):
        pool = SamplerPool(10, seed=2)
        pool.extend(zipf_stream(50, 300, seed=3))
        assert pool.tracked_items <= 10

    def test_finalize_empty_stream(self):
        pool = SamplerPool(4, seed=0)
        assert pool.finalize() == []

    def test_heap_events_logarithmic(self):
        """Total replacements ≈ R·H_m — far below R·m."""
        r, m = 32, 2000
        pool = SamplerPool(r, seed=4)
        pool.extend(zipf_stream(16, m, seed=5))
        harmonic = float(np.log(m)) + 1
        assert pool.heap_events <= 3 * r * harmonic
        assert pool.heap_events >= r  # every instance adopted at least once

    def test_item_count_consistency(self):
        """(item, count, ts) must be mutually consistent with the stream."""
        stream = list(zipf_stream(6, 400, seed=6))
        pool = SamplerPool(8, seed=7)
        pool.extend(stream)
        for item, count, ts in pool.finalize():
            assert stream[ts - 1] == item
            forward = sum(1 for x in stream[ts - 1:] if x == item)
            assert count == forward

    def test_validates_instances(self):
        with pytest.raises(ValueError):
            SamplerPool(0)


class TestPoolMatchesLiteralAlgorithm1:
    def test_sampled_position_distribution(self):
        """Each pool instance's timestamp must be uniform over [1, m],
        exactly like the naive reservoir."""
        m = 15
        stream = list(range(m))
        counts = Counter()
        for seed in range(4000):
            pool = SamplerPool(2, seed=seed)
            pool.extend(stream)
            for __, __, ts in pool.finalize():
                counts[ts] += 1
        observed = np.array([counts[t] for t in range(1, m + 1)])
        __, pvalue = sps.chisquare(observed)
        assert pvalue > 1e-3

    def test_joint_item_count_distribution_matches_naive(self):
        """(item, count) histogram of pool instances vs the literal
        TimestampedReservoir on the same stream."""
        stream = [0, 1, 0, 2, 0, 1, 0]
        pool_counts = Counter()
        naive_counts = Counter()
        trials = 6000
        for seed in range(trials):
            pool = SamplerPool(1, seed=seed)
            pool.extend(stream)
            ((item, count, __),) = pool.finalize()
            pool_counts[(item, count)] += 1
            naive = TimestampedReservoir(seed + 10**6)
            naive.extend(stream)
            naive_counts[(naive.item, naive.count)] += 1
        keys = sorted(set(pool_counts) | set(naive_counts))
        pool_arr = np.array([pool_counts[k] for k in keys], dtype=float)
        naive_arr = np.array([naive_counts[k] for k in keys], dtype=float)
        # Two-sample chi-square (homogeneity).
        table = np.vstack([pool_arr, naive_arr])
        __, pvalue, __, __ = sps.chi2_contingency(table)
        assert pvalue > 1e-3
