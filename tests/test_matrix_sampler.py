"""Distributional exactness of the matrix row sampler (Algorithm 3 /
Theorem 3.7)."""

import numpy as np
import pytest

from helpers import assert_matches_distribution
from repro.core import RowL1Measure, RowL2Measure, TrulyPerfectMatrixSampler
from repro.stats import row_target

# A small fixed matrix streamed entry-by-entry.
MATRIX = np.array(
    [
        [3, 0, 1],
        [0, 5, 0],
        [2, 2, 2],
        [0, 0, 10],
    ]
)


def _matrix_updates(matrix, seed):
    rng = np.random.default_rng(seed)
    ups = []
    for r, row in enumerate(matrix):
        for c, v in enumerate(row):
            ups.extend([(r, c)] * int(v))
    order = rng.permutation(len(ups))
    return [ups[i] for i in order]


UPDATES = _matrix_updates(MATRIX, seed=5)


class TestRowMeasures:
    def test_l1_value(self):
        m = RowL1Measure()
        assert m.value({0: 2, 2: 3}) == pytest.approx(5.0)
        assert m.coordinate_increment({0: 2}, 1) == 1.0
        assert m.zeta() == 1.0

    def test_l2_value_and_increment_bound(self):
        m = RowL2Measure()
        assert m.value({0: 3, 1: 4}) == pytest.approx(5.0)
        inc = m.coordinate_increment({0: 3, 1: 4}, 0)
        assert 0 < inc <= m.zeta() + 1e-12

    def test_l2_fg_bound(self):
        m = RowL2Measure()
        # F_G ≥ m/√d must under-approximate the true row-norm sum.
        truth = sum(float(np.linalg.norm(row)) for row in MATRIX)
        assert m.fg_lower_bound(int(MATRIX.sum()), 3) <= truth + 1e-9


class TestMatrixSampler:
    def test_l11_row_distribution(self):
        measure = RowL1Measure()
        target = row_target(MATRIX, measure)

        def run(seed):
            s = TrulyPerfectMatrixSampler(measure, d=3, seed=seed, m_hint=len(UPDATES))
            return s.run(UPDATES)

        assert_matches_distribution(run, target, trials=3000, max_fail_rate=0.05)

    def test_l12_row_distribution(self):
        measure = RowL2Measure()
        target = row_target(MATRIX, measure)

        def run(seed):
            s = TrulyPerfectMatrixSampler(measure, d=3, seed=seed, m_hint=len(UPDATES))
            return s.run(UPDATES)

        assert_matches_distribution(run, target, trials=3000, max_fail_rate=0.05)

    def test_empty_stream(self):
        s = TrulyPerfectMatrixSampler(RowL1Measure(), d=2, seed=0)
        assert s.sample().is_empty

    def test_column_validation(self):
        s = TrulyPerfectMatrixSampler(RowL1Measure(), d=2, seed=0)
        with pytest.raises(ValueError):
            s.update(0, 5)

    def test_instance_default_l1_is_small(self):
        s = TrulyPerfectMatrixSampler(RowL1Measure(), d=4, delta=0.05, seed=0)
        # ζm/F_G = 1 for L1,1, so only ln(1/δ) ≈ 3 instances.
        assert s.instances <= 4

    def test_metadata_reports_column(self):
        s = TrulyPerfectMatrixSampler(RowL1Measure(), d=3, seed=1, m_hint=len(UPDATES))
        res = s.run(UPDATES)
        assert res.is_item
        assert 0 <= res.metadata["col"] < 3
