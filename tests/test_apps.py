"""Tests for the applications layer (repro.apps)."""

import numpy as np
import pytest

from repro.apps import FGEstimator, find_duplicate, find_heavy_hitters
from repro.core import HuberMeasure, L1L2Measure, LpMeasure
from repro.sketches.lp_norm import exact_fp
from repro.streams import (
    planted_heavy_hitter_stream,
    sparse_support_stream,
    stream_from_frequencies,
    zipf_stream,
)


class TestHeavyHitters:
    def test_finds_planted_item(self):
        stream = planted_heavy_hitter_stream(
            100, 3000, heavy_fraction=0.5, heavy_item=42, seed=0
        )
        report = find_heavy_hitters(stream, 100, p=2.0, phi=0.3, seed=1)
        assert 42 in report.items
        assert report.hit_rate(42) > 0.5

    def test_no_false_heavies_on_flat_stream(self):
        stream = stream_from_frequencies(np.full(50, 20), order="random", seed=2)
        # delta tight enough that the sample budget makes a spurious
        # φ/2-share event vanishingly unlikely (the default budget of 15
        # draws crosses the 3-hit cutoff for ~13% of seeds).
        report = find_heavy_hitters(stream, 50, p=2.0, phi=0.4, delta=0.005, seed=3)
        # every item has mass 1/50 « phi/2 = 0.2
        assert report.items == ()

    def test_budget_grows_with_confidence(self):
        stream = zipf_stream(20, 200, seed=4)
        loose = find_heavy_hitters(stream, 20, phi=0.2, delta=0.5, seed=5)
        tight = find_heavy_hitters(stream, 20, phi=0.2, delta=0.01, seed=5)
        assert tight.samples_used > loose.samples_used

    def test_validates_phi(self):
        stream = zipf_stream(10, 50, seed=0)
        with pytest.raises(ValueError):
            find_heavy_hitters(stream, 10, phi=1.5)


class TestFGEstimator:
    def test_unbiased_for_f2(self):
        stream = zipf_stream(32, 2000, alpha=1.1, seed=6)
        truth = exact_fp(stream.frequencies(), 2.0)
        estimates = []
        for seed in range(40):
            est = FGEstimator(units=128, seed=seed)
            est.extend(stream)
            estimates.append(est.estimate(LpMeasure(2.0)))
        mean = float(np.mean(estimates))
        assert mean == pytest.approx(truth, rel=0.15)

    def test_simultaneous_measures_share_state(self):
        stream = zipf_stream(32, 1000, seed=7)
        est = FGEstimator(units=64, seed=8)
        est.extend(stream)
        many = est.estimate_many([LpMeasure(1.0), HuberMeasure(1.0), L1L2Measure()])
        assert set(many) == {"L1", "Huber(τ=1)", "L1-L2"}
        # F1 estimate is *exact*: increments of L1 are identically 1.
        assert many["L1"] == pytest.approx(1000.0)

    def test_accuracy_improves_with_units(self):
        stream = zipf_stream(32, 1500, alpha=1.3, seed=9)
        truth = exact_fp(stream.frequencies(), 2.0)

        def spread(units):
            vals = []
            for s in range(25):
                e = FGEstimator(units=units, seed=s)
                e.extend(stream)
                vals.append(e.estimate(LpMeasure(2.0)))
            return float(np.std(np.asarray(vals) / truth))

        assert spread(256) < spread(8)

    def test_empty(self):
        est = FGEstimator(units=4, seed=0)
        assert est.estimate(LpMeasure(2.0)) == 0.0


class TestFindDuplicate:
    def test_finds_a_duplicate(self):
        freq = np.array([1, 1, 5, 1, 1])
        stream = stream_from_frequencies(freq, order="random", seed=10)
        dup = find_duplicate(stream, 5, seed=11)
        assert dup == 2

    def test_none_when_all_unique(self):
        stream = sparse_support_stream(1000, support=8, m=8, seed=12)
        # every item appears at most ... build explicitly unique stream
        from repro.streams import Stream

        stream = Stream(list(range(20)), n=1000)
        assert find_duplicate(stream, 1000, max_draws=16, seed=13) is None

    def test_respects_draw_budget(self):
        from repro.streams import Stream

        stream = Stream([0, 0] + list(range(1, 30)), n=64)
        dup = find_duplicate(stream, 64, max_draws=64, seed=14)
        assert dup == 0
