"""Tests for weighted reservoir sampling (the [JSTW19] substrate)."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.core import WeightedL1Sampler, WeightedReservoir
from repro.stats import total_variation


class TestWeightedReservoir:
    def test_holds_first_k(self):
        r = WeightedReservoir(3, seed=0)
        r.extend([(1, 1.0), (2, 2.0)])
        assert {i for i, __ in r.sample()} == {1, 2}

    def test_size_capped(self):
        r = WeightedReservoir(4, seed=0)
        r.extend((i, 1.0) for i in range(50))
        assert len(r.sample()) == 4

    def test_rejects_nonpositive_weights(self):
        r = WeightedReservoir(2, seed=0)
        with pytest.raises(ValueError):
            r.update(0, 0.0)

    def test_validates_k(self):
        with pytest.raises(ValueError):
            WeightedReservoir(0)

    def test_unweighted_matches_uniform(self):
        """All weights 1 ⇒ classic uniform reservoir."""
        m, k = 10, 2
        counts = np.zeros(m)
        for seed in range(4000):
            r = WeightedReservoir(k, seed=seed)
            r.extend((i, 1.0) for i in range(m))
            for item, __ in r.sample():
                counts[item] += 1
        __, pvalue = sps.chisquare(counts)
        assert pvalue > 1e-3

    def test_total_weight_tracked(self):
        r = WeightedReservoir(1, seed=0)
        r.extend([(0, 1.5), (1, 2.5)])
        assert r.total_weight == pytest.approx(4.0)
        assert r.count == 2

    def test_bare_items_default_weight(self):
        r = WeightedReservoir(2, seed=0)
        r.extend([5, 6])
        assert r.total_weight == pytest.approx(2.0)


class TestWeightedL1Sampler:
    def test_distribution_proportional_to_weight(self):
        """P(i) = W_i/ΣW exactly — chi-square over 4000 trials."""
        updates = [(0, 1.0), (1, 2.0), (2, 4.0), (3, 8.0), (0, 1.0)]
        weights = np.array([2.0, 2.0, 4.0, 8.0])
        target = weights / weights.sum()
        counts = np.zeros(4)
        trials = 12000
        for seed in range(trials):
            s = WeightedL1Sampler(seed=90_000 + seed)
            res = s.run(updates)
            counts[res.item] += 1
        emp = counts / trials
        assert total_variation(emp, target) < 0.03
        __, pvalue = sps.chisquare(counts, target * trials)
        assert pvalue > 1e-3

    def test_never_fails_nonempty(self):
        for seed in range(50):
            s = WeightedL1Sampler(seed=seed)
            assert s.run([(7, 0.5)]).is_item

    def test_empty(self):
        assert WeightedL1Sampler(seed=0).sample().is_empty

    def test_split_weights_equal_single_update(self):
        """Ten weight-1 updates to i ≡ one weight-10 update (L1 mass)."""
        hits_split = 0
        hits_single = 0
        trials = 3000
        for seed in range(trials):
            split = WeightedL1Sampler(seed=seed)
            split.extend([(0, 1.0)] * 10 + [(1, 10.0)])
            hits_split += split.sample().item == 0
            single = WeightedL1Sampler(seed=10**6 + seed)
            single.extend([(0, 10.0), (1, 10.0)])
            hits_single += single.sample().item == 0
        assert abs(hits_split - hits_single) / trials < 0.05
