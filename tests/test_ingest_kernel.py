"""The two-phase shared-index ingest kernel (PR 9).

The contract under test: the engine's batched ingest — phase-1 heap
events pre-simulated per shard (``plan_batch``), one candidate-limited
:class:`PositionIndex` shared by every shard, data applied through
:class:`ShardView` position views — is *bitwise identical* to the
scalar ``update()`` loop, across every pool-backed registry kind and
across the whole lifecycle (snapshot/restore, merge, compact).  The
perf story in ``benchmarks/perf_suite.py`` (scenario ``ingest_kernel``)
rides entirely on this equivalence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.g_sampler import SamplerPool
from repro.core.reservoir import skip_next_replacement, skip_next_replacements
from repro.core.timeline import ChunkDigest, PositionIndex, ShardView
from repro.engine import ShardedSamplerEngine
from repro.obs import MetricsRegistry, use_registry


def norm(state):
    """Normalize a snapshot tree (numpy arrays → lists) so bitwise-equal
    states compare equal regardless of container type."""
    if isinstance(state, dict):
        return {k: norm(v) for k, v in state.items()}
    if isinstance(state, (list, tuple)):
        return [norm(v) for v in state]
    if isinstance(state, np.ndarray):
        return [norm(v) for v in state.tolist()]
    if isinstance(state, np.generic):
        return state.item()
    return state


#: Every registry kind whose ingest path bottoms out in SamplerPool's
#: batched kernel.  ``lp`` is pinned to p=1 here: for p > 1 the
#: Misra–Gries normalizer's batched update is documented as
#: distribution-preserving but not bitwise (only the pool half is), so
#: bitwise parity is asserted exactly where the contract promises it.
POOL_BACKED = [
    ("g", {"kind": "g", "measure": {"name": "huber"}, "instances": 24}),
    ("lp-p1", {"kind": "lp", "p": 1.0, "n": 1 << 12, "instances": 24}),
    ("pool", {"kind": "pool", "instances": 16}),
]


def _assert_same_sample(kind, a: ShardedSamplerEngine, b: ShardedSamplerEngine):
    if kind == "pool":  # the raw pool is query-less substrate
        return
    assert a.sample() == b.sample()


def _zipf(m: int, top: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (np.minimum(rng.zipf(1.3, size=m), top) - 1).astype(np.int64)


def _feed_scalar(engine: ShardedSamplerEngine, items: np.ndarray) -> None:
    for item in items.tolist():
        engine.update(item)


@pytest.mark.parametrize("kind,config", POOL_BACKED, ids=[k for k, _ in POOL_BACKED])
@pytest.mark.parametrize("shards", [2, 8])
class TestEngineScalarParity:
    def test_batched_ingest_matches_scalar_loop(self, kind, config, shards):
        items = _zipf(3000, 400, seed=17)
        batched = ShardedSamplerEngine(dict(config), shards=shards, seed=5)
        scalar = ShardedSamplerEngine(dict(config), shards=shards, seed=5)
        # Uneven chunking: batch boundaries must not be observable.
        batched.ingest(items[:1100], chunk_size=257)
        batched.ingest(items[1100:], chunk_size=1 << 16)
        _feed_scalar(scalar, items)
        assert norm(batched.snapshot()) == norm(scalar.snapshot())
        _assert_same_sample(kind, batched, scalar)

    def test_parity_survives_lifecycle(self, kind, config, shards):
        """compact → merge → snapshot/restore, then keep ingesting:
        the batched and scalar paths must stay bitwise locked through
        every lifecycle edge, not just on a fresh sampler."""
        s1, s2, s3 = (_zipf(1200, 300, seed=s) for s in (21, 22, 23))
        batched = ShardedSamplerEngine(dict(config), shards=shards, seed=9)
        scalar = ShardedSamplerEngine(dict(config), shards=shards, seed=9)
        # Same seed: engine merge demands an identical partition layout
        # (the real deployment — one config fed from two sites).
        other_b = ShardedSamplerEngine(dict(config), shards=shards, seed=9)
        other_s = ShardedSamplerEngine(dict(config), shards=shards, seed=9)
        batched.ingest(s1, chunk_size=389)
        _feed_scalar(scalar, s1)
        other_b.ingest(s2, chunk_size=389)
        _feed_scalar(other_s, s2)
        batched.compact()
        scalar.compact()
        batched.merge(other_b)
        scalar.merge(other_s)
        snap = batched.snapshot()
        assert norm(snap) == norm(scalar.snapshot())
        # Replica boot: same config/seed (restore demands the layout),
        # state then overwritten wholesale by the snapshot.
        restored = ShardedSamplerEngine(dict(config), shards=shards, seed=9)
        restored.restore(snap)
        batched.ingest(s3, chunk_size=1 << 16)
        _feed_scalar(restored, s3)
        assert norm(batched.snapshot()) == norm(restored.snapshot())
        _assert_same_sample(kind, batched, restored)


ADVERSARIAL = {
    # Heap events pile onto a single shard; every settle hits one value.
    "all-one-item": np.full(4000, 7, dtype=np.int64),
    # No item repeats: the index's heavy side is all singletons.
    "all-distinct": np.arange(4000, dtype=np.int64),
    # Values straddle the 16-bit index gate mid-stream: the engine must
    # mix shared-index chunks with fallback chunks without drifting.
    "mixed-range": np.concatenate(
        [_zipf(1500, 200, seed=3), _zipf(1500, 200, seed=4) + (1 << 17),
         _zipf(1000, 200, seed=5)]
    ),
    # Negative ids are never indexable — pure fallback, still batched.
    "negative-ids": _zipf(2000, 300, seed=6) - 150,
}


@pytest.mark.parametrize("name", sorted(ADVERSARIAL))
def test_adversarial_chunks_match_scalar(name):
    items = ADVERSARIAL[name]
    config = {"kind": "g", "measure": {"name": "lp", "p": 2.0}, "instances": 16}
    scalar = ShardedSamplerEngine(dict(config), shards=4, seed=2)
    _feed_scalar(scalar, items)
    want = norm(scalar.snapshot())
    # chunk_size=1 puts every heap event on a chunk boundary; the shared
    # index covers whole batches, so boundary handling lives in the
    # reference path and in the batched kernel's flush-at-end.
    for chunk_size, shared_index in [(1, False), (7, True), (997, True), (1 << 16, True)]:
        engine = ShardedSamplerEngine(dict(config), shards=4, seed=2)
        engine.ingest(items, chunk_size=chunk_size, shared_index=shared_index)
        assert norm(engine.snapshot()) == want, (
            f"{name}: chunk_size={chunk_size} shared_index={shared_index}"
        )


class TestPositionIndex:
    def _check(self, base, cand, queries, bounds):
        index = PositionIndex(base, cand)
        got = index.rank_many(queries, bounds)
        for j, (v, g) in enumerate(zip(queries.tolist(), bounds.tolist())):
            if 0 <= v <= 0xFFFF and v in set(cand.tolist()):
                assert got[j] == int(np.sum(base[:g] == v)), (v, g)
            else:
                assert got[j] == 0, (v, g)
        tot = index.totals(queries)
        for j, v in enumerate(queries.tolist()):
            want = int(np.sum(base == v)) if 0 <= v <= 0xFFFF else 0
            assert tot[j] == want

    def test_rank_many_heavy_and_light(self):
        # >255 candidates forces the heavy/light split: the 255 largest
        # by batch mass take the uint8 radix side, the rest the encoded
        # mini-index over the sentinel tail.
        rng = np.random.default_rng(31)
        base = _zipf(5000, 450, seed=31)
        cand = np.unique(rng.choice(450, size=320, replace=False)).astype(np.int64)
        queries = rng.choice(cand, size=600).astype(np.int64)
        bounds = rng.integers(0, base.size + 1, size=600)
        self._check(base, cand, queries, bounds)

    def test_rank_many_all_heavy(self):
        rng = np.random.default_rng(32)
        base = _zipf(2000, 90, seed=32)
        cand = np.arange(90, dtype=np.int64)  # ≤255: no light side at all
        queries = rng.choice(cand, size=300).astype(np.int64)
        bounds = rng.integers(0, base.size + 1, size=300)
        self._check(base, cand, queries, bounds)

    def test_out_of_range_and_non_candidate_queries_rank_zero(self):
        base = _zipf(1000, 100, seed=33)
        cand = np.arange(0, 50, dtype=np.int64)
        queries = np.array([-3, 1 << 17, 0xFFFF, 60, 5], dtype=np.int64)
        bounds = np.full(queries.size, base.size, dtype=np.int64)
        index = PositionIndex(base, cand)
        got = index.rank_many(queries, bounds)
        assert got[0] == 0 and got[1] == 0  # outside the 16-bit gate
        assert got[2] == 0  # in range, absent from the chunk
        assert got[3] == 0  # in range, not a candidate (contract: 0)
        assert got[4] == int(np.sum(base == 5))

    def test_shard_view_materializes_subchunk(self):
        base = np.array([5, 9, 5, 3, 9, 9], dtype=np.int64)
        positions = np.array([0, 2, 3], dtype=np.int64)
        view = ShardView(base, positions, PositionIndex(base, np.unique(base)))
        assert view.size == 3
        np.testing.assert_array_equal(view.values(), [5, 5, 3])


class TestChunkDigestHeavyHitters:
    @pytest.mark.parametrize("seed", range(8))
    def test_mg_aux_answers_every_heavy_hitter_exactly(self, seed):
        # Values far above the dense-regime bound force the sorted +
        # Misra–Gries side.  MG property: every item with
        # f > n/(capacity+1) survives the pass, so after the exactify
        # step its *true* count sits in the O(1) heavy dict.
        capacity = 64
        rng = np.random.default_rng(seed)
        items = (_zipf(3000, 500, seed=seed) + (1 << 40)).astype(np.int64)
        digest = ChunkDigest(items, heavy_capacity=capacity)
        assert not digest.dense
        uniq, counts = np.unique(items, return_counts=True)
        threshold = items.size / (capacity + 1)
        for value, count in zip(uniq.tolist(), counts.tolist()):
            if count > threshold:
                assert digest.heavy.get(value) == count
            assert digest.count(value) == count
        absent = int(uniq.max()) + 1
        assert digest.count(absent) == 0
        assert digest.count(int(rng.integers(0, 100))) == 0

    def test_dense_regime_is_exact(self):
        items = _zipf(2000, 300, seed=40)
        digest = ChunkDigest(items)
        assert digest.dense
        uniq, counts = np.unique(items, return_counts=True)
        for value, count in zip(uniq.tolist(), counts.tolist()):
            assert digest.count(value) == count
        assert digest.count(301) == 0
        assert digest.count(-1) == 0


class TestScalarKernelContracts:
    def test_skip_next_replacements_bitwise(self):
        # The vectorized skip helper must consume the RNG stream exactly
        # as the scalar helper would — same jumps, same end state.
        for seed in range(6):
            times = np.random.default_rng(100 + seed).integers(
                1, 10_000, size=257
            )
            rng_a = np.random.default_rng(seed)
            rng_b = np.random.default_rng(seed)
            scalar = [skip_next_replacement(int(t), rng_a) for t in times]
            batched = skip_next_replacements(times, rng_b)
            assert list(batched) == scalar
            assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_plan_batch_then_view_matches_scalar_updates(self):
        # The engine-internal pairing contract: plan_batch pre-simulates
        # phase 1 (mutating heap + RNG), and the one matching ShardView
        # application must land the exact scalar end state.
        items_a = _zipf(500, 60, seed=50)
        items_b = _zipf(400, 60, seed=51)
        scalar = SamplerPool(instances=8, seed=13)
        pool = SamplerPool(instances=8, seed=13)
        for items in (items_a, items_b):  # second round: tracked ≠ ∅
            for item in items.tolist():
                scalar.update(int(item))
            tracked = pool.tracked_values()
            t0 = pool.position  # plan_batch leaves the position untouched
            plan = pool.plan_batch(items.size)
            parts = [tracked] if tracked.size else []
            if plan[0]:
                offs = np.asarray(plan[0], dtype=np.int64)
                offs -= t0 + 1
                parts.append(items[offs])
            cand = (
                np.unique(np.concatenate(parts))
                if parts
                else np.empty(0, dtype=np.int64)
            )
            view = ShardView(
                items, np.arange(items.size, dtype=np.int64),
                PositionIndex(items, cand), events=plan,
            )
            pool.update_batch(view)
            assert norm(pool.snapshot()) == norm(scalar.snapshot())


def test_ingest_kernel_counters_exposed():
    reg = MetricsRegistry()
    with use_registry(reg):
        engine = ShardedSamplerEngine(
            {"kind": "pool", "instances": 16}, shards=2, seed=3
        )
    engine.ingest(_zipf(20_000, 500, seed=60))
    text = reg.render_prometheus()
    events = settles = None
    for line in text.splitlines():
        if line.startswith("repro_ingest_heap_events_total "):
            events = float(line.split()[-1])
        if line.startswith("repro_ingest_settle_scans_total "):
            settles = float(line.split()[-1])
    assert events is not None and events > 0
    assert settles is not None and settles >= 0
