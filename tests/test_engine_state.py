"""Mergeable state: snapshot/restore roundtrips (bitwise continuation),
bytes serialization, and merge exactness/associativity — merge(A, B) must
behave as one sampler run over the concatenation A‖B of a disjoint
universe partition."""

import numpy as np
import pytest

from helpers import assert_matches_distribution
from repro.core.f0_sampler import RandomOracleF0Sampler, TrulyPerfectF0Sampler
from repro.core.g_sampler import SamplerPool, TrulyPerfectGSampler
from repro.core.lp_sampler import TrulyPerfectLpSampler
from repro.core.measures import L1L2Measure, LpMeasure
from repro.engine.state import (
    MergeableState,
    load_state,
    merged,
    save_state,
    state_from_bytes,
    state_to_bytes,
    supports_merge,
)
from repro.sketches.misra_gries import MisraGries
from repro.sliding_window import (
    SlidingWindowF0Sampler,
    SlidingWindowGSampler,
    SlidingWindowLpSampler,
)
from repro.stats import f0_target, g_target, lp_target
from repro.streams import uniform_stream, zipf_stream


def _partition(items: np.ndarray, parts: int) -> list[np.ndarray]:
    """Disjoint-universe split (by item value, order-preserving)."""
    return [items[items % parts == k] for k in range(parts)]


class TestSnapshotRestore:
    def test_pool_roundtrip_continues_bitwise(self):
        stream = np.asarray(zipf_stream(64, 4000, alpha=1.2, seed=1).items)
        pool = SamplerPool(16, seed=3)
        pool.update_batch(stream[:2000])
        clone = SamplerPool.from_snapshot(pool.snapshot())
        pool.update_batch(stream[2000:])
        clone.update_batch(stream[2000:])
        assert pool.finalize() == clone.finalize()
        assert pool.snapshot()["rng_state"] == clone.snapshot()["rng_state"]

    def test_lp_bytes_roundtrip(self):
        stream = zipf_stream(64, 3000, alpha=1.3, seed=2)
        sampler = TrulyPerfectLpSampler(p=2.0, n=64, seed=5)
        sampler.update_batch(stream.items)
        buf = save_state(sampler)
        clone = TrulyPerfectLpSampler(p=2.0, n=64, seed=99)
        load_state(clone, buf)
        assert clone.normalizer() == sampler.normalizer()
        assert clone.sample().item == sampler.sample().item

    def test_f0_bytes_roundtrip(self):
        stream = zipf_stream(200, 3000, alpha=1.0, seed=4)
        sampler = TrulyPerfectF0Sampler(200, seed=6)
        sampler.update_batch(stream.items)
        clone = TrulyPerfectF0Sampler(200, seed=123)
        load_state(clone, save_state(sampler))
        for cs, cc in zip(sampler._copies, clone._copies):
            assert cs._s_set == cc._s_set
            assert cs._counts == cc._counts
        assert clone.sample().item == sampler.sample().item

    def test_g_restore_rejects_measure_mismatch(self):
        from repro.core.measures import CauchyMeasure, HuberMeasure

        huber = TrulyPerfectGSampler(HuberMeasure(1.0), m_hint=100, seed=1)
        huber.update_batch(np.arange(50))
        cauchy = TrulyPerfectGSampler(CauchyMeasure(1.0), m_hint=100, seed=1)
        with pytest.raises(ValueError, match="measure"):
            load_state(cauchy, save_state(huber))

    def test_f0_roundtrip_keeps_position(self):
        sampler = TrulyPerfectF0Sampler(64, seed=1)
        sampler.update_batch(np.arange(64).repeat(3))
        clone = TrulyPerfectF0Sampler(64, seed=2)
        load_state(clone, save_state(sampler))
        assert clone.position == sampler.position == 192

    def test_serialization_rejects_garbage(self):
        with pytest.raises(ValueError):
            state_from_bytes(b"NOPE" + b"\x00" * 16)
        buf = state_to_bytes({"kind": "x", "arr": np.arange(10)})
        with pytest.raises(ValueError):
            state_from_bytes(buf[:12])  # truncated

    def test_serialization_preserves_nested_tree(self):
        state = {
            "kind": "demo",
            "meta": {"a": 1, "b": [1, 2, 3], "c": None, "flag": True},
            "nested": {"arr": np.arange(5, dtype=np.int64)},
            "floats": np.linspace(0, 1, 4),
        }
        back = state_from_bytes(state_to_bytes(state))
        assert back["kind"] == "demo"
        assert back["meta"] == {"a": 1, "b": [1, 2, 3], "c": None, "flag": True}
        assert np.array_equal(back["nested"]["arr"], np.arange(5))
        assert np.allclose(back["floats"], np.linspace(0, 1, 4))

    def test_protocol_detection(self):
        assert supports_merge(SamplerPool(2, seed=0))
        assert supports_merge(TrulyPerfectF0Sampler(16, seed=0))
        assert isinstance(SamplerPool(2, seed=0), MergeableState)
        assert not supports_merge(object())


class TestSlidingWindowSnapshotRestore:
    """Count-based sliding-window samplers checkpoint and restore
    bitwise (they don't merge — "the last W updates" of a sharded
    stream has no global arrival order; time-based windows in
    repro.windows do)."""

    def test_sw_g_roundtrip_continues_bitwise(self):
        items = np.asarray(zipf_stream(48, 5000, alpha=1.2, seed=31).items)
        a = SlidingWindowGSampler(L1L2Measure(), window=800, instances=24, seed=5)
        a.extend(items[:2500])
        b = SlidingWindowGSampler(L1L2Measure(), window=800, instances=24, seed=88)
        load_state(b, save_state(a))
        a.extend(items[2500:])
        b.extend(items[2500:])
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())
        assert a.sample().item == b.sample().item

    def test_sw_g_restore_rejects_mismatch(self):
        a = SlidingWindowGSampler(L1L2Measure(), window=100, instances=4, seed=0)
        wrong_window = SlidingWindowGSampler(
            L1L2Measure(), window=200, instances=4, seed=0
        )
        with pytest.raises(ValueError, match="window"):
            wrong_window.restore(a.snapshot())
        wrong_measure = SlidingWindowGSampler(
            LpMeasure(1.0), window=100, instances=4, seed=0
        )
        with pytest.raises(ValueError, match="measure"):
            wrong_measure.restore(a.snapshot())

    def test_sw_lp_roundtrip_restores_histogram(self):
        items = np.asarray(zipf_stream(48, 4000, alpha=1.3, seed=32).items)
        a = SlidingWindowLpSampler(2.0, window=700, instances=48, seed=6)
        a.update_batch(items[:2000])
        b = SlidingWindowLpSampler(2.0, window=700, instances=48, seed=13)
        load_state(b, save_state(a))
        assert b.normalizer() == a.normalizer()
        assert b.histogram_checkpoints == a.histogram_checkpoints
        a.update_batch(items[2000:])
        b.update_batch(items[2000:])
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())
        assert b.normalizer() == a.normalizer()

    def test_sw_lp_p1_roundtrip_has_no_histogram(self):
        a = SlidingWindowLpSampler(1.0, window=50, instances=8, seed=1)
        a.update_batch(np.arange(40))
        state = a.snapshot()
        assert "hist" not in state
        b = SlidingWindowLpSampler(1.0, window=50, instances=8, seed=2)
        b.restore(state)
        assert b.position == 40

    def test_sw_f0_roundtrip_continues_bitwise(self):
        items = np.asarray(zipf_stream(80, 4000, alpha=1.0, seed=33).items)
        a = SlidingWindowF0Sampler(80, window=600, seed=7)
        a.update_batch(items[:2000])
        b = SlidingWindowF0Sampler(80, window=600, seed=55)
        load_state(b, save_state(a))
        a.update_batch(items[2000:])
        b.update_batch(items[2000:])
        assert state_to_bytes(a.snapshot()) == state_to_bytes(b.snapshot())
        assert a.sample().item == b.sample().item

    def test_sw_f0_restore_rejects_mismatch(self):
        a = SlidingWindowF0Sampler(64, window=100, seed=0)
        b = SlidingWindowF0Sampler(128, window=100, seed=0)
        with pytest.raises(ValueError):
            b.restore(a.snapshot())

    def test_sw_samplers_support_snapshot_protocol(self):
        for sampler in (
            SlidingWindowGSampler(L1L2Measure(), window=10, instances=2, seed=0),
            SlidingWindowLpSampler(2.0, window=10, instances=2, seed=0),
            SlidingWindowF0Sampler(16, window=10, seed=0),
        ):
            buf = save_state(sampler)
            assert state_from_bytes(buf)["kind"] == sampler.snapshot()["kind"]


class TestPoolMergeExactness:
    def test_merge_matches_single_stream_distribution(self):
        """merge(A, B) over a disjoint partition ≡ one G-sampler on A‖B
        — checked on the conditional output distribution."""
        stream = zipf_stream(30, 1600, alpha=1.2, seed=11)
        items = np.asarray(stream.items)
        target = g_target(stream.frequencies(), L1L2Measure())

        def run(seed):
            half_a, half_b = _partition(items, 2)
            a = TrulyPerfectGSampler(L1L2Measure(), m_hint=1600, seed=seed)
            b = TrulyPerfectGSampler(L1L2Measure(), m_hint=1600, seed=seed + 10**6)
            a.update_batch(half_a)
            b.update_batch(half_b)
            a.merge(b)
            return a.sample()

        assert_matches_distribution(run, target, trials=300)

    def test_merge_associativity_distribution(self):
        """Both fold orders of three shards match the single-stream law."""
        stream = zipf_stream(24, 1500, alpha=1.1, seed=12)
        items = np.asarray(stream.items)
        target = g_target(stream.frequencies(), LpMeasure(1.0))

        def make(seed):
            shards = []
            for k, part in enumerate(_partition(items, 3)):
                s = TrulyPerfectGSampler(
                    LpMeasure(1.0), instances=24, seed=seed + k * 7919
                )
                s.update_batch(part)
                shards.append(s)
            return shards

        def run_left(seed):
            a, b, c = make(seed)
            a.merge(b)
            a.merge(c)
            return a.sample()

        def run_right(seed):
            a, b, c = make(seed)
            b.merge(c)
            a.merge(b)
            return a.sample()

        assert_matches_distribution(run_left, target, trials=300)
        assert_matches_distribution(run_right, target, trials=300, seed_offset=10**7)

    def test_merge_positions_and_structure(self):
        items = np.asarray(zipf_stream(40, 2000, alpha=1.0, seed=13).items)
        half_a, half_b = _partition(items, 2)
        a = SamplerPool(8, seed=1)
        b = SamplerPool(8, seed=2)
        a.update_batch(half_a)
        b.update_batch(half_b)
        a.merge(b)
        assert a.position == 2000
        finals = a.finalize()
        assert len(finals) == 8
        for item, count, ts in finals:
            assert count >= 1
            assert 1 <= ts <= 2000
        # Shared counters stay consistent: counts[i] ≥ every holder's need.
        for idx, (item, count, __) in enumerate(finals):
            assert a._counts[item] - a._offsets[idx] == count

    def test_merge_empty_other_is_noop(self):
        a = SamplerPool(4, seed=1)
        a.update_batch(np.arange(10))
        before = a.finalize()
        a.merge(SamplerPool(4, seed=2))
        assert a.finalize() == before

    def test_merge_into_empty_adopts_other(self):
        a = SamplerPool(4, seed=1)
        b = SamplerPool(4, seed=2)
        b.update_batch(np.arange(50))
        a.merge(b)
        assert a.position == 50
        assert a.finalize() == b.finalize()

    def test_merge_validates(self):
        with pytest.raises(ValueError):
            SamplerPool(4, seed=0).merge(SamplerPool(8, seed=0))
        with pytest.raises(TypeError):
            SamplerPool(4, seed=0).merge(object())


class TestLpAndF0Merge:
    def test_lp_merge_distribution(self):
        stream = zipf_stream(24, 1500, alpha=1.4, seed=15)
        items = np.asarray(stream.items)
        target = lp_target(stream.frequencies(), 2.0)

        def run(seed):
            half_a, half_b = _partition(items, 2)
            a = TrulyPerfectLpSampler(p=2.0, n=24, seed=seed)
            b = TrulyPerfectLpSampler(p=2.0, n=24, seed=seed + 10**6)
            a.update_batch(half_a)
            b.update_batch(half_b)
            a.merge(b)
            return a.sample()

        assert_matches_distribution(run, target, trials=300)

    def test_lp_merge_normalizer_certified(self):
        items = np.asarray(zipf_stream(32, 3000, alpha=1.5, seed=16).items)
        half_a, half_b = _partition(items, 2)
        a = TrulyPerfectLpSampler(p=2.0, n=32, seed=1)
        b = TrulyPerfectLpSampler(p=2.0, n=32, seed=2)
        a.update_batch(half_a)
        b.update_batch(half_b)
        a.merge(b)
        linf = int(np.bincount(items, minlength=32).max())
        # ζ must certify the global max increment f∞^p − (f∞−1)^p.
        assert a.normalizer() >= linf**2 - (linf - 1) ** 2

    def test_f0_merge_equals_concatenated_run(self):
        """Same seed ⇒ same random subsets ⇒ merged state is *exactly*
        the single-run state over A‖B, including T-table order."""
        full = np.asarray(uniform_stream(300, 5000, seed=8).items)
        part_a, part_b = _partition(full, 2)
        single = TrulyPerfectF0Sampler(300, seed=77)
        single.update_batch(np.concatenate([part_a, part_b]))
        a = TrulyPerfectF0Sampler(300, seed=77)
        b = TrulyPerfectF0Sampler(300, seed=77)
        a.update_batch(part_a)
        b.update_batch(part_b)
        a.merge(b)
        for cs, cm in zip(single._copies, a._copies):
            assert list(cs._first) == list(cm._first)
            assert cs._counts == cm._counts
            assert cs._overflowed == cm._overflowed

    def test_f0_merge_distribution(self):
        stream = zipf_stream(100, 1200, alpha=1.1, seed=17)
        items = np.asarray(stream.items)
        target = f0_target(stream.frequencies())

        def run(seed):
            part_a, part_b = _partition(items, 2)
            a = TrulyPerfectF0Sampler(100, seed=seed)
            b = TrulyPerfectF0Sampler(100, seed=seed)
            a.update_batch(part_a)
            b.update_batch(part_b)
            a.merge(b)
            return a.sample()

        assert_matches_distribution(run, target, trials=300)

    def test_f0_merge_requires_shared_subsets(self):
        a = TrulyPerfectF0Sampler(100, seed=1)
        b = TrulyPerfectF0Sampler(100, seed=2)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_oracle_f0_merge_keeps_global_min(self):
        items = np.asarray(uniform_stream(200, 2000, seed=18).items)
        part_a, part_b = _partition(items, 2)
        a = RandomOracleF0Sampler(200, seed=3)
        b = RandomOracleF0Sampler(200, seed=4)
        a.update_batch(part_a)
        b.update_batch(part_b)
        winner = a if a._min_val <= b._min_val else b
        expected = (winner._min_item, winner._min_val, winner._count)
        a.merge(b)
        assert (a._min_item, a._min_val, a._count) == expected


class TestMisraGriesMergeAndBatch:
    def test_merged_bound_still_certified(self):
        items = np.asarray(zipf_stream(64, 6000, alpha=1.3, seed=19).items)
        half_a, half_b = _partition(items, 2)
        a = MisraGries(8)
        b = MisraGries(8)
        a.update_batch(half_a)
        b.update_batch(half_b)
        a.merge(b)
        freq = np.bincount(items, minlength=64)
        assert a.stream_length == 6000
        assert len(a.items()) <= 8
        assert a.linf_upper_bound() >= freq.max()
        for item, est in a.items().items():
            assert est <= freq[item]

    def test_batch_update_bound_certified(self):
        items = np.asarray(zipf_stream(64, 5000, alpha=1.2, seed=20).items)
        mg = MisraGries(8)
        mg.update_batch(items)
        freq = np.bincount(items, minlength=64)
        assert mg.linf_upper_bound() >= freq.max()
        for item, est in mg.items().items():
            assert est <= freq[item]

    def test_merge_validates_capacity(self):
        with pytest.raises(ValueError):
            MisraGries(4).merge(MisraGries(8))


class TestMergedHelper:
    def test_merged_leaves_inputs_untouched(self):
        items = np.asarray(zipf_stream(40, 2000, alpha=1.0, seed=21).items)
        shards = []
        for k, part in enumerate(_partition(items, 4)):
            pool = SamplerPool(8, seed=k)
            pool.update_batch(part)
            shards.append(pool)
        positions = [s.position for s in shards]
        folded = merged(shards)
        assert folded.position == 2000
        assert [s.position for s in shards] == positions

    def test_merged_rejects_empty(self):
        with pytest.raises(ValueError):
            merged([])
