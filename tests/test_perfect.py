"""Tests for the perfect (γ > 0) samplers and exponential machinery
(Appendix B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import assert_matches_distribution
from repro.perfect import (
    ExponentialAssignment,
    FastPerfectLpSampler,
    PrecisionSamplingLpSampler,
    WeightedMisraGries,
    sample_p_stable,
)
from repro.stats import lp_target, total_variation
from repro.stats.harness import collect_outcomes, empirical_distribution
from repro.streams import stream_from_frequencies

FREQ = np.array([1, 2, 4, 8, 16])
STREAM = stream_from_frequencies(FREQ, order="random", seed=13)


class TestExponentialAssignment:
    def test_consistency(self):
        e = ExponentialAssignment(0.5, seed=3)
        assert e.exponential(7, 2) == e.exponential(7, 2)
        assert e.scale(7, 2) == pytest.approx(e.exponential(7, 2) ** -2.0)

    def test_distinct_keys_distinct_draws(self):
        e = ExponentialAssignment(0.5, seed=3)
        assert e.exponential(1, 0) != e.exponential(2, 0)

    def test_argmax_exact_is_lp_distributed(self):
        """Lemma B.3: P(argmax = i) = f_i^p/F_p — exactly."""
        p = 0.5
        target = lp_target(FREQ, p)
        counts = np.zeros(len(FREQ))
        trials = 4000
        for seed in range(trials):
            e = ExponentialAssignment(p, seed=seed)
            counts[e.argmax_exact(FREQ)] += 1
        tv = total_variation(counts / trials, target)
        assert tv < 0.03

    def test_argmax_rejects_zero_vector(self):
        e = ExponentialAssignment(1.0, seed=0)
        with pytest.raises(ValueError):
            e.argmax_exact(np.zeros(3))

    def test_validates_p(self):
        with pytest.raises(ValueError):
            ExponentialAssignment(0.0)


class TestPStable:
    def test_half_stable_matches_inverse_exponential_sums(self):
        """Theorem B.10: Σ_j 1/e_j² (p=1/2) scaled by n² approaches a
        ½-stable law; compare medians."""
        rng = np.random.default_rng(0)
        n_inner = 400
        sums = []
        for __ in range(400):
            e = rng.exponential(1.0, size=n_inner)
            sums.append((e**-2.0).sum() / n_inner**2)
        stable = sample_p_stable(0.5, 4000, rng)
        # Positive ½-stable: compare medians within a factor of 2.
        med_sum = np.median(sums)
        med_stable = np.median(np.abs(stable))
        assert 0.2 < med_sum / med_stable < 5.0

    def test_validates_p(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_p_stable(1.0, 10, rng)
        with pytest.raises(ValueError):
            sample_p_stable(2.5, 10, rng)


class TestWeightedMisraGries:
    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.floats(0.0, 10.0)),
            min_size=1,
            max_size=80,
        ),
        st.integers(1, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_error_bound(self, updates, capacity):
        mg = WeightedMisraGries(capacity)
        truth: dict[int, float] = {}
        total = 0.0
        for key, w in updates:
            mg.update(key, w)
            truth[key] = truth.get(key, 0.0) + w
            total += w
        bound = total / (capacity + 1)
        for key, w in truth.items():
            est = mg.estimate(key)
            assert est <= w + 1e-6
            assert est >= w - bound - 1e-6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            WeightedMisraGries(2).update(0, -1.0)

    def test_argmax(self):
        mg = WeightedMisraGries(4)
        mg.update(1, 5.0)
        mg.update(2, 1.0)
        key, est = mg.argmax()
        assert key == 1
        assert est == pytest.approx(5.0)

    def test_empty_argmax(self):
        assert WeightedMisraGries(2).argmax() == (None, 0.0)


class TestFastPerfectLp:
    def test_output_close_to_target_but_gamma_positive(self):
        """Perfect ⇒ TV shrinks with duplication; tiny duplication shows
        visible bias, larger duplication shrinks it."""
        p = 0.5
        target = lp_target(FREQ, p)

        def run_for(dup):
            def run(seed):
                s = FastPerfectLpSampler(p, len(FREQ), duplication=dup, seed=seed)
                return s.run(STREAM)

            counts, fails, __ = collect_outcomes(run, trials=1500)
            dist = empirical_distribution(counts, len(FREQ))
            return total_variation(dist, target), fails / 1500

        tv_small, __ = run_for(2)
        tv_large, fail_large = run_for(32)
        assert tv_large < 0.12
        assert fail_large < 0.9

    def test_validates_p(self):
        with pytest.raises(ValueError):
            FastPerfectLpSampler(1.5, 8)

    def test_empty(self):
        s = FastPerfectLpSampler(0.5, 8, seed=0)
        assert s.sample().is_empty


class TestPrecisionSamplingBaseline:
    def test_output_distribution_roughly_lp(self):
        p = 1.0
        target = lp_target(FREQ, p)

        def run(seed):
            s = PrecisionSamplingLpSampler(
                p, len(FREQ), duplication=4, width=512, depth=5,
                dominance=1.5, seed=seed,
            )
            return s.run(STREAM)

        counts, fails, __ = collect_outcomes(run, trials=1200)
        assert sum(counts.values()) > 100  # accepts a reasonable fraction
        dist = empirical_distribution(counts, len(FREQ))
        # Perfect-not-truly-perfect: close, but we only demand ballpark.
        assert total_variation(dist, target) < 0.25

    def test_empty(self):
        s = PrecisionSamplingLpSampler(1.0, 8, seed=0)
        assert s.sample().is_empty

    def test_validates_p(self):
        with pytest.raises(ValueError):
            PrecisionSamplingLpSampler(3.0, 8)

    def test_update_cost_scales_with_duplication(self):
        """The knob the paper's n^{O(c)} update time corresponds to."""
        import time

        def cost(dup):
            s = PrecisionSamplingLpSampler(1.0, 64, duplication=dup, width=64,
                                           depth=3, seed=0)
            t0 = time.perf_counter()
            for __ in range(300):
                s.update(5)
            return time.perf_counter() - t0

        assert cost(16) > 2.0 * cost(1)
