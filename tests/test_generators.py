"""Tests for workload generators (repro.streams.generators)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams import (
    adversarial_order_stream,
    constant_stream,
    matrix_stream,
    permuted,
    planted_heavy_hitter_stream,
    random_order_stream,
    sparse_support_stream,
    stream_from_frequencies,
    strict_turnstile_stream,
    two_level_stream,
    uniform_stream,
    zipf_stream,
)


class TestStreamFromFrequencies:
    @given(st.lists(st.integers(0, 6), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_sorted(self, freq):
        s = stream_from_frequencies(freq, order="sorted")
        assert s.frequencies().tolist() == freq

    @given(st.lists(st.integers(0, 6), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_random(self, freq):
        s = stream_from_frequencies(freq, order="random", seed=0)
        assert s.frequencies().tolist() == freq

    def test_interleaved_order(self):
        s = stream_from_frequencies([2, 1], order="interleaved")
        assert list(s) == [0, 1, 0]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            stream_from_frequencies([-1, 2])

    def test_rejects_unknown_order(self):
        with pytest.raises(ValueError):
            stream_from_frequencies([1], order="sideways")


class TestZipf:
    def test_shape_and_determinism(self):
        a = zipf_stream(100, 500, alpha=1.2, seed=7)
        b = zipf_stream(100, 500, alpha=1.2, seed=7)
        assert len(a) == 500
        assert a.n == 100
        assert list(a) == list(b)

    def test_skew_increases_with_alpha(self):
        flat = zipf_stream(50, 5000, alpha=0.5, seed=1).frequencies()
        steep = zipf_stream(50, 5000, alpha=2.5, seed=1).frequencies()
        assert steep.max() > flat.max()

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            zipf_stream(10, 10, alpha=0)


class TestUniformConstant:
    def test_uniform_covers_universe(self):
        s = uniform_stream(10, 2000, seed=3)
        assert (s.frequencies() > 0).all()

    def test_constant(self):
        s = constant_stream(5, 7, item=2)
        assert s.frequencies().tolist() == [0, 0, 7, 0, 0]

    def test_constant_validates_item(self):
        with pytest.raises(ValueError):
            constant_stream(5, 7, item=5)


class TestTwoLevel:
    def test_exact_frequencies(self):
        s = two_level_stream(10, heavy_items=2, heavy_count=9, light_count=1, seed=0)
        freq = sorted(s.frequencies().tolist(), reverse=True)
        assert freq == [9, 9] + [1] * 8

    def test_rejects_too_many_heavy(self):
        with pytest.raises(ValueError):
            two_level_stream(3, heavy_items=4, heavy_count=2)


class TestSparseSupport:
    def test_support_size(self):
        s = sparse_support_stream(1000, support=5, m=500, seed=0)
        assert int((s.frequencies() > 0).sum()) <= 5

    def test_validates_support(self):
        with pytest.raises(ValueError):
            sparse_support_stream(10, support=11, m=5)
        with pytest.raises(ValueError):
            sparse_support_stream(10, support=0, m=5)


class TestPlantedHeavyHitter:
    def test_mass_fraction(self):
        s = planted_heavy_hitter_stream(100, 2000, heavy_fraction=0.5, seed=0)
        freq = s.frequencies()
        assert freq[0] >= 900  # ~half the stream plus uniform hits

    def test_validates_fraction(self):
        with pytest.raises(ValueError):
            planted_heavy_hitter_stream(10, 10, heavy_fraction=1.5)


class TestOrders:
    def test_random_order_preserves_frequencies(self):
        freq = [3, 0, 2, 5]
        s = random_order_stream(freq, seed=0)
        assert s.frequencies().tolist() == freq

    def test_adversarial_order_interleaves(self):
        s = adversarial_order_stream([3, 3])
        items = list(s)
        # Round-robin: no adjacent equal pair until one item is exhausted.
        assert items == [0, 1, 0, 1, 0, 1]

    def test_permuted_preserves_multiset(self):
        s = zipf_stream(20, 100, seed=0)
        p = permuted(s, seed=1)
        assert p.frequencies().tolist() == s.frequencies().tolist()


class TestStrictTurnstile:
    def test_generates_valid_strict_stream(self):
        ts = strict_turnstile_stream(20, 200, delete_fraction=0.4, seed=0)
        assert len(ts) == 200
        assert (ts.frequencies() >= 0).all()

    def test_contains_deletions(self):
        ts = strict_turnstile_stream(20, 300, delete_fraction=0.5, seed=1)
        assert any(u.delta < 0 for u in ts)

    def test_validates_fraction(self):
        with pytest.raises(ValueError):
            strict_turnstile_stream(5, 10, delete_fraction=1.0)


class TestMatrixStream:
    def test_shapes(self):
        ups = matrix_stream(4, 3, 50, seed=0)
        assert len(ups) == 50
        assert all(0 <= r < 4 and 0 <= c < 3 for r, c in ups)

    def test_row_weights_bias(self):
        ups = matrix_stream(2, 2, 2000, row_weights=[0.9, 0.1], seed=0)
        rows = [r for r, __ in ups]
        assert rows.count(0) > 3 * rows.count(1)

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            matrix_stream(2, 2, 10, row_weights=[1.0])
